package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"ansmet/internal/core"
)

// testRunner is shared across tests (workload construction dominates).
var testRunner = NewRunner(QuickScale())

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v / 100
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"x", "y"}, {"long", "z"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	tab.Format(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a     bb", "long  z", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestFig01Shape(t *testing.T) {
	tab := testRunner.Fig01()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		distFrac := parsePct(t, row[2]) + parsePct(t, row[3])
		if distFrac < 0.5 {
			t.Errorf("%s: distance comparison only %.0f%% of time, expected dominant", row[0], distFrac*100)
		}
		if rej := parsePct(t, row[4]); rej < 0.35 {
			t.Errorf("%s: only %.0f%% comparisons rejected, expected a large fraction", row[0], rej*100)
		}
	}
}

func TestFig03Shape(t *testing.T) {
	tab := testRunner.Fig03()
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	// GIST first bits must be low entropy.
	for _, row := range tab.Rows {
		if row[0] == "GIST" && row[1] == "1" {
			if e := parseF(t, row[2]); e > 0.2 {
				t.Errorf("GIST 1-bit entropy %v, want near 0", e)
			}
		}
	}
}

func TestFig06Shapes(t *testing.T) {
	tab := testRunner.Fig06([]int{10})
	var geo []string
	for _, row := range tab.Rows {
		if row[0] == "geomean" {
			geo = row
		}
	}
	if geo == nil {
		t.Fatal("no geomean row")
	}
	// Columns: dataset, k, then designs in AllDesigns order.
	col := func(d core.Design) float64 { return parseF(t, geo[2+int(d)]) }
	cpuBase := col(core.CPUBase)
	ndpBase := col(core.NDPBase)
	etopt := col(core.NDPETOpt)
	dimET := col(core.NDPDimET)
	if cpuBase != 1 {
		t.Errorf("CPU-Base norm %v != 1", cpuBase)
	}
	if ndpBase < 3 {
		t.Errorf("NDP-Base geomean speedup %v, want >= 3 (paper: 5.26)", ndpBase)
	}
	if etopt <= ndpBase {
		t.Errorf("NDP-ETOpt %v not ahead of NDP-Base %v", etopt, ndpBase)
	}
	if dimET > ndpBase*1.35 {
		t.Errorf("NDP-DimET %v suspiciously far ahead of NDP-Base %v (paper: ~6%%)", dimET, ndpBase)
	}
	// DimET must not help on the IP datasets (GloVe rows ~= NDP-Base).
	for _, row := range tab.Rows {
		if row[0] == "GloVe" {
			g := parseF(t, row[2+int(core.NDPDimET)])
			b := parseF(t, row[2+int(core.NDPBase)])
			if g > b*1.1 {
				t.Errorf("GloVe: DimET %v should not beat NDP-Base %v (IP has no dim-only bound)", g, b)
			}
		}
	}
}

func TestFig07Shape(t *testing.T) {
	tab := testRunner.Fig07()
	for _, row := range tab.Rows {
		ndpBase := parseF(t, row[3])
		etopt := parseF(t, row[6])
		if ndpBase >= 1 {
			t.Errorf("%s: NDP-Base energy %v not below CPU-Base", row[0], ndpBase)
		}
		if etopt > ndpBase*1.05 {
			t.Errorf("%s: ETOpt energy %v above NDP-Base %v", row[0], etopt, ndpBase)
		}
	}
}

func TestFig08Shape(t *testing.T) {
	tab := testRunner.Fig08()
	// Recall must be non-decreasing in efSearch per (dataset, design), and
	// the largest efSearch must clear 0.8 recall.
	prev := map[string]float64{}
	for _, row := range tab.Rows {
		key := row[0] + "/" + row[1]
		rec := parseF(t, row[3])
		if p, ok := prev[key]; ok && rec < p-0.08 {
			t.Errorf("%s: recall dropped sharply %v -> %v with larger efSearch", key, p, rec)
		}
		prev[key] = rec
		if row[2] == "160" && rec < 0.8 {
			t.Errorf("%s: recall %v at efSearch=160, want >= 0.8", key, rec)
		}
	}
}

func TestFigTieredFrontierShape(t *testing.T) {
	tab := testRunner.FigTieredFrontier()
	exactLines := map[string]float64{}
	for _, row := range tab.Rows {
		if row[1] == "exact" {
			exactLines[row[0]] = parseF(t, row[4])
			if rec := parseF(t, row[3]); rec != 1 {
				t.Errorf("%s exact scan recall %v != 1", row[0], rec)
			}
		}
	}
	prevRec := map[string]float64{}
	prevPool := map[string]float64{}
	for _, row := range tab.Rows {
		if row[1] != "tiered" {
			continue
		}
		name := row[0]
		rec, pool := parseF(t, row[3]), parseF(t, row[5])
		// Recall and pool size are monotone in the budget (rows are emitted
		// in ascending budget order).
		if p, ok := prevRec[name]; ok && rec < p {
			t.Errorf("%s: tiered recall fell %v -> %v with a larger budget", name, p, rec)
		}
		if p, ok := prevPool[name]; ok && pool < p {
			t.Errorf("%s: tiered pool shrank %v -> %v with a larger budget", name, p, pool)
		}
		prevRec[name], prevPool[name] = rec, pool
		if row[2] == "B=1.00" {
			if rec != 1 {
				t.Errorf("%s: tiered B=1 recall %v != 1 (losslessness)", name, rec)
			}
			if lines := parseF(t, row[4]); lines >= exactLines[name] {
				t.Errorf("%s: tiered B=1 lines/query %v not below exact scan %v",
					name, lines, exactLines[name])
			}
		}
	}
	if len(prevRec) != 2 || len(exactLines) != 2 {
		t.Fatalf("missing datasets: tiered=%v exact=%v", prevRec, exactLines)
	}
}

func TestFigPrecisionFrontierShape(t *testing.T) {
	tab := testRunner.FigPrecisionFrontier()
	if len(tab.Rows)%4 != 0 || len(tab.Rows) == 0 {
		t.Fatalf("want cells of 4 rows (beam/tiered x fixed/adaptive), got %d rows", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 4 {
		bf, ba, tf, ta := tab.Rows[i], tab.Rows[i+1], tab.Rows[i+2], tab.Rows[i+3]
		name, tgt := bf[0], bf[1]
		if bf[2] != "beam" || bf[3] != "fixed" || ba[3] != "adaptive" ||
			tf[2] != "tiered" || tf[3] != "fixed" || ta[3] != "adaptive" {
			t.Fatalf("%s/%s: unexpected row layout %v", name, tgt, tab.Rows[i:i+4])
		}
		// Beam: adaptive must save lines without giving up meaningful recall.
		if fix, ad := parseF(t, bf[5]), parseF(t, ba[5]); ad >= fix {
			t.Errorf("%s/%s: adaptive beam lines %v not below fixed %v", name, tgt, ad, fix)
		}
		if fix, ad := parseF(t, bf[4]), parseF(t, ba[4]); ad < fix-0.05 {
			t.Errorf("%s/%s: adaptive beam recall %v fell more than 0.05 below fixed %v",
				name, tgt, ad, fix)
		}
		if sp := parseF(t, ba[7]); sp <= 1 {
			t.Errorf("%s/%s: beam speedup %v not > 1", name, tgt, sp)
		}
		// Tiered: the deeper adaptive stage-1 must not grow the re-rank pool,
		// and recall must stay at least at the fixed arm's level - 0.05.
		if fix, ad := parseF(t, tf[6]), parseF(t, ta[6]); ad > fix {
			t.Errorf("%s/%s: adaptive tiered pool %v above fixed %v", name, tgt, ad, fix)
		}
		if fix, ad := parseF(t, tf[4]), parseF(t, ta[4]); ad < fix-0.05 {
			t.Errorf("%s/%s: adaptive tiered recall %v fell more than 0.05 below fixed %v",
				name, tgt, ad, fix)
		}
	}
}

func TestFig09Shape(t *testing.T) {
	tab := testRunner.Fig09()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	var cpu, ndp, conv, adapt float64
	var convColl, adaptColl float64
	for _, row := range tab.Rows {
		total := parseF(t, row[5])
		switch row[0] {
		case "CPU-Base":
			cpu = total
		case "NDP-Base":
			ndp = total
		case "NDP-ETOpt+ConvPoll":
			conv = total
			convColl = parseF(t, row[4])
		case "NDP-ETOpt+AdaptPoll":
			adapt = total
			adaptColl = parseF(t, row[4])
		}
	}
	if ndp != 1 {
		t.Errorf("NDP-Base total %v != 1 (normalization)", ndp)
	}
	if cpu < 1.5 {
		t.Errorf("CPU-Base total %v, want >> NDP-Base", cpu)
	}
	if conv > 1.02 {
		t.Errorf("ETOpt+Conv total %v should not exceed NDP-Base", conv)
	}
	if adaptColl >= convColl {
		t.Errorf("adaptive collect %v not below conventional %v", adaptColl, convColl)
	}
	if adapt > conv+1e-9 {
		t.Errorf("adaptive total %v above conventional %v", adapt, conv)
	}
}

func TestFig10Shape(t *testing.T) {
	tab := testRunner.Fig10()
	for _, row := range tab.Rows {
		base := parsePct(t, row[1])
		et := parsePct(t, row[4])
		opt := parsePct(t, row[6])
		if et < base-1e-9 {
			t.Errorf("%s: NDP-ET utilization %v below NDP-Base %v", row[0], et, base)
		}
		if opt < base-1e-9 {
			t.Errorf("%s: NDP-ETOpt utilization %v below NDP-Base %v", row[0], opt, base)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	tab := testRunner.Fig11()
	kl := map[string]float64{}
	for _, row := range tab.Rows {
		kl[row[0]+"/"+row[1]] = parseF(t, row[2])
	}
	if kl["#samples/100"] > kl["#samples/10"]+0.05 {
		t.Errorf("more samples should not diverge more: 100 -> %v vs 10 -> %v",
			kl["#samples/100"], kl["#samples/10"])
	}
	for k, v := range kl {
		if v < -1e-9 {
			t.Errorf("negative KL at %s: %v", k, v)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tab := testRunner.Fig12()
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = parseF(t, row[1])
	}
	if vals["hybrid-1kB"] != 1 {
		t.Errorf("normalization broken: %v", vals)
	}
	// ET prefers longer sub-vectors: tiny sub-vectors must not win.
	if vals["hybrid-256B"] > vals["hybrid-1kB"]*1.05 {
		t.Errorf("256B hybrid %v should not beat 1kB", vals["hybrid-256B"])
	}
	if vals["vertical"] > vals["horizontal"] {
		t.Errorf("vertical %v should not beat horizontal %v under ET", vals["vertical"], vals["horizontal"])
	}
}

func TestTable3Scaling(t *testing.T) {
	tab := testRunner.Table3()
	first := parseF(t, tab.Rows[0][1])
	peak, last := first, first
	for _, row := range tab.Rows {
		sp := parseF(t, row[1])
		if sp > peak {
			peak = sp
		}
		last = sp
	}
	// Scaling must rise substantially from 8 units before saturating; at
	// this reproduction's scale the per-hop command overheads cap scaling
	// earlier than the paper's 32-64 unit knee (see EXPERIMENTS.md).
	if peak < 1.3*first {
		t.Errorf("scaling too flat: first %v, peak %v", first, peak)
	}
	if last < 0.7*peak {
		t.Errorf("64-unit speedup %v collapsed far below peak %v", last, peak)
	}
}

func TestTable4Overhead(t *testing.T) {
	tab := testRunner.Table4()
	for _, row := range tab.Rows {
		// The paper's <1% holds at billion scale where graph construction
		// dominates; at this reproduction's scale both are sub-second, so
		// only sanity-check the ratio. The bound leaves wide headroom: graph
		// construction is distance-kernel-bound and runs ~4-5x faster under
		// SIMD dispatch, while the sampling-based layout preprocessing is
		// not, so the ratio legitimately reaches ~3.5x on 960-dim GIST (and
		// wall-clock noise on a loaded 1-vCPU runner stretches it further).
		if parsePct(t, row[3]) > 10.0 {
			t.Errorf("%s: preprocessing overhead %s out of control", row[0], row[3])
		}
	}
}

func TestTable5Shape(t *testing.T) {
	tab := testRunner.Table5()
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// The 0.1% budget row: positive space saving; small extra accesses.
	for _, row := range tab.Rows {
		if row[0] == "0.1%" {
			if parsePct(t, row[3]) <= 0 {
				t.Errorf("no space saved at 0.1%% budget: %v", row)
			}
			if parsePct(t, row[5]) > 0.2 {
				t.Errorf("extra accesses %s too high at 0.1%% budget", row[5])
			}
		}
	}
}

func TestReplicationShape(t *testing.T) {
	tab := testRunner.Replication()
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		vals[row[0]+"/"+row[1]] = parseF(t, row[2])
	}
	if vals["zipf(2.0)/top-4-layers"] > vals["zipf(2.0)/off"] {
		t.Errorf("replication did not help under skew: %v", vals)
	}
}

func TestAblationBeamBatch(t *testing.T) {
	tab := testRunner.AblationBeamBatch()
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// More batching must reduce hops and not hurt recall much.
	firstHops := parseF(t, tab.Rows[0][1])
	lastHops := parseF(t, tab.Rows[len(tab.Rows)-1][1])
	if lastHops >= firstHops {
		t.Errorf("batching did not reduce hops: %v -> %v", firstHops, lastHops)
	}
	for _, row := range tab.Rows {
		if rec := parseF(t, row[3]); rec < 0.75 {
			t.Errorf("batch=%s recall %v collapsed", row[0], rec)
		}
	}
	// NDP throughput should improve with batching.
	if last := parseF(t, tab.Rows[len(tab.Rows)-1][5]); last < 1.2 {
		t.Errorf("batch=16 normQPS %v, want >= 1.2 over batch=1", last)
	}
}

// TestParallelMatchesSerial is the determinism contract of the parallel
// experiment pipeline: every generator must produce byte-identical output
// whether its cells run serially or on a worker pool. It reuses the shared
// testRunner so the cached wall-clock measurements (Table 4) are common to
// both passes, exactly as in a real regeneration run.
func TestParallelMatchesSerial(t *testing.T) {
	gens := []struct {
		name string
		fn   func(*Runner) *Table
	}{
		{"Fig01", (*Runner).Fig01},
		{"Fig03", (*Runner).Fig03},
		{"Fig06", func(r *Runner) *Table { return r.Fig06([]int{10}) }},
		{"Fig07", (*Runner).Fig07},
		{"Fig08", (*Runner).Fig08},
		{"Fig09", (*Runner).Fig09},
		{"Fig10", (*Runner).Fig10},
		{"Fig11", (*Runner).Fig11},
		{"Fig12", (*Runner).Fig12},
		{"FigTieredFrontier", (*Runner).FigTieredFrontier},
		{"FigPrecisionFrontier", (*Runner).FigPrecisionFrontier},
		{"Table3", (*Runner).Table3},
		{"Table4", (*Runner).Table4},
		{"Table5", (*Runner).Table5},
		{"Replication", (*Runner).Replication},
		{"AblationBeamBatch", (*Runner).AblationBeamBatch},
		{"AblationQuantization", (*Runner).AblationQuantization},
	}
	format := func(tab *Table) []byte {
		var buf bytes.Buffer
		tab.Format(&buf)
		return buf.Bytes()
	}
	defer func() { testRunner.workers = 0 }()
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			testRunner.Parallel(1)
			serial := format(g.fn(testRunner))
			testRunner.Parallel(4)
			par := format(g.fn(testRunner))
			if !bytes.Equal(serial, par) {
				t.Errorf("parallel output diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
			}
		})
	}
}

func TestAblationQuantization(t *testing.T) {
	tab := testRunner.AblationQuantization()
	vals := map[string][]string{}
	for _, row := range tab.Rows {
		vals[row[0]] = row
	}
	full := parseF(t, vals["full-precision scan"][1])
	et := parseF(t, vals["ANSMET ET scan"][1])
	if et >= full {
		t.Errorf("ET scan bytes %v not below full scan %v", et, full)
	}
	if vals["ANSMET ET scan"][3] != "true" {
		t.Error("ET scan must be exact")
	}
	if rec := parseF(t, vals["ANSMET ET scan"][2]); rec != 1 {
		t.Errorf("ET scan recall %v != 1", rec)
	}
	if rec := parseF(t, vals["PQ16x64 + partial-element ET"][2]); rec >= 1 {
		t.Errorf("PQ recall %v should be lossy", rec)
	}
}
