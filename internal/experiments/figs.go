package experiments

import (
	"fmt"
	"math"

	"ansmet/internal/core"
	"ansmet/internal/dataset"
	"ansmet/internal/energy"
	"ansmet/internal/hnsw"
	"ansmet/internal/layout"
	"ansmet/internal/partition"
	"ansmet/internal/polling"
	"ansmet/internal/precision"
	"ansmet/internal/stats"
)

// Fig01 reproduces the motivation breakdown (Fig. 1): fraction of CPU-Base
// execution time spent on rejected distance comparisons, accepted ones, and
// index traversal + sorting, for HNSW and IVF on SIFT and GIST.
func (r *Runner) Fig01() *Table {
	t := &Table{
		Title:  "Fig.1: CPU-Base time breakdown (index+sort / accepted / rejected dist. comp.)",
		Header: []string{"workload", "index+sort", "dist(accepted)", "dist(rejected)", "rejectedTasks"},
	}
	type cell struct{ idx, name string }
	var cells []cell
	for _, idx := range []string{"HNSW", "IVF"} {
		for _, name := range []string{"SIFT", "GIST"} {
			cells = append(cells, cell{idx, name})
		}
	}
	rows := make([][]string, len(cells))
	r.parMap(len(cells), func(i int) {
		c := cells[i]
		// Fig. 1 measures the k'=k setting, where the tight threshold
		// rejects most comparisons.
		w, sys := r.system(c.name, core.CPUBase, nil)
		var run *core.RunResult
		if c.idx == "HNSW" {
			run = sys.RunHNSW(w.ds.Queries, 10, 10)
		} else {
			nprobe := w.ivf.NumClusters() / 4
			if nprobe < 2 {
				nprobe = 2
			}
			run = sys.RunIVF(w.ivf, w.ds.Queries, 10, 10, nprobe)
		}
		rep := run.Report
		total := rep.TraversalNs + rep.DistCompNs
		rejLines := float64(rep.IneffectualLines)
		allLines := rejLines + float64(rep.EffectualLines)
		rejFrac := rep.DistCompNs / total * rejLines / allLines
		accFrac := rep.DistCompNs/total - rejFrac
		tasks, rejected := 0, 0
		for _, tr := range run.Traces {
			tasks += tr.TotalTasks()
			rejected += tr.TotalTasks() - tr.AcceptedTasks()
		}
		rows[i] = []string{
			c.idx + "-" + c.name,
			pct(rep.TraversalNs / total),
			pct(accFrac),
			pct(rejFrac),
			pct(float64(rejected) / float64(tasks)),
		}
	})
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper: distance comparison dominates and 50%-90%+ of comparisons are rejected")
	return t
}

// Fig03 reproduces the prefix-entropy and ET-frequency distributions over
// prefix lengths (Fig. 3) for the four datasets the paper plots.
func (r *Runner) Fig03() *Table {
	t := &Table{
		Title:  "Fig.3: prefix entropy (nats) and ET frequency vs prefix bit length",
		Header: []string{"dataset", "bits", "entropy", "etFreq"},
	}
	names := []string{"GIST", "DEEP", "BigANN", "SPACEV"}
	perDS := make([][][]string, len(names))
	r.parMap(len(names), func(i int) {
		name := names[i]
		w := r.load(name)
		sample := sampleVectors(w.ds, 100, r.Scale.Seed)
		an, err := layout.Analyze(sample, w.ds.Profile.Elem, w.ds.Profile.Metric, layout.DefaultOptions())
		if err != nil {
			panic(err)
		}
		bits := w.ds.Profile.Elem.Bits()
		step := 1
		if bits > 16 {
			step = 2 // keep fp32 rows readable
		}
		for b := 1; b <= bits; b += step {
			perDS[i] = append(perDS[i], []string{
				name, fmt.Sprint(b), fmt.Sprintf("%.3f", an.PrefixEntropy[b-1]),
				fmt.Sprintf("%.4f", an.ETFreq[b-1]),
			})
		}
	})
	for _, rows := range perDS {
		t.Rows = append(t.Rows, rows...)
	}
	t.Notes = append(t.Notes,
		"expected shape: low entropy for the first bits, ET mass concentrated mid-range, little in the lowest bits")
	return t
}

// Fig06 reproduces the headline speedup comparison (Fig. 6): all nine
// designs on all seven datasets for k in {1,5,10}, normalized to CPU-Base.
func (r *Runner) Fig06(ks []int) *Table {
	if len(ks) == 0 {
		ks = []int{1, 5, 10}
	}
	t := &Table{
		Title:  "Fig.6: speedup over CPU-Base (HNSW)",
		Header: append([]string{"dataset", "k"}, designNames()...),
	}
	type cell struct {
		name string
		k    int
		d    core.Design
	}
	var cells []cell
	for _, name := range AllProfiles {
		for _, k := range ks {
			for _, d := range core.AllDesigns {
				cells = append(cells, cell{name, k, d})
			}
		}
	}
	qps := make([]float64, len(cells))
	r.parMap(len(cells), func(i int) {
		c := cells[i]
		w, sys := r.system(c.name, c.d, nil)
		run := sys.RunHNSW(w.ds.Queries, c.k, r.Scale.EfSearch)
		qps[i] = r.timedReport(sys, run).QPS()
	})
	// Assembly: normalize each (dataset, k) row to its CPU-Base cell.
	geo := map[string][]float64{}
	nd := len(core.AllDesigns)
	for ci := 0; ci < len(cells); ci += nd {
		c := cells[ci]
		row := []string{c.name, fmt.Sprint(c.k)}
		var base float64
		for di, d := range core.AllDesigns {
			q := qps[ci+di]
			if d == core.CPUBase {
				base = q
			}
			sp := q / base
			row = append(row, f2(sp))
			if c.k == 10 {
				geo[d.String()] = append(geo[d.String()], sp)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	gm := []string{"geomean", "10"}
	for _, d := range core.AllDesigns {
		gm = append(gm, f2(stats.GeoMean(geo[d.String()])))
	}
	t.Rows = append(t.Rows, gm)
	t.Notes = append(t.Notes,
		"paper: NDP-Base 5.26x average (up to 6.40x); ET adds 1.52x on NDP; NDP-DimET marginal and ineffective on IP datasets")
	return t
}

// Fig07 reproduces the system-energy comparison (Fig. 7) at k=10,
// normalized to CPU-Base, for the six designs the paper plots.
func (r *Runner) Fig07() *Table {
	designs := []core.Design{core.CPUBase, core.CPUETOpt, core.NDPBase, core.NDPDimET, core.NDPBitET, core.NDPETOpt}
	t := &Table{
		Title:  "Fig.7: normalized system energy (k=10)",
		Header: []string{"dataset", "CPU-Base", "CPU-ETOpt", "NDP-Base", "NDP-DimET", "NDP-BitET", "NDP-ETOpt"},
	}
	model := energy.Default()
	nd := len(designs)
	mjs := make([]float64, len(AllProfiles)*nd)
	r.parMap(len(mjs), func(i int) {
		name, d := AllProfiles[i/nd], designs[i%nd]
		w, sys := r.system(name, d, nil)
		run := sys.RunHNSW(w.ds.Queries, 10, r.Scale.EfSearch)
		mjs[i] = model.Compute(r.timedReport(sys, run).EnergyActivity()).TotalMJ()
	})
	for ni, name := range AllProfiles {
		row := []string{name}
		var base float64
		for di, d := range designs {
			e := mjs[ni*nd+di]
			if d == core.CPUBase {
				base = e
			}
			row = append(row, f2(e/base))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: NDP-Base uses 77.8% less energy than CPU-Base; ET reduces it further")
	return t
}

// Fig08 reproduces the recall-vs-QPS tradeoff curves (Fig. 8) on SIFT and
// GIST by sweeping the result-queue size k' (efSearch).
func (r *Runner) Fig08() *Table {
	t := &Table{
		Title:  "Fig.8: recall@10 vs QPS (efSearch sweep)",
		Header: []string{"dataset", "design", "efSearch", "recall@10", "QPS"},
	}
	type cell struct {
		name string
		d    core.Design
		ef   int
	}
	var cells []cell
	for _, name := range []string{"SIFT", "GIST"} {
		for _, d := range []core.Design{core.CPUBase, core.NDPBase, core.NDPETOpt} {
			for _, ef := range []int{10, 20, 40, 80, 160} {
				cells = append(cells, cell{name, d, ef})
			}
		}
	}
	rows := make([][]string, len(cells))
	r.parMap(len(cells), func(i int) {
		c := cells[i]
		w, sys := r.system(c.name, c.d, nil)
		run := sys.RunHNSW(w.ds.Queries, 10, c.ef)
		rows[i] = []string{
			c.name, c.d.String(), fmt.Sprint(c.ef),
			fmt.Sprintf("%.3f", recallOf(w, run)),
			fmt.Sprintf("%.0f", r.timedReport(sys, run).QPS()),
		}
	})
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper: ANSMET dominates at every accuracy; smaller k' tightens thresholds and widens the ET gap")
	return t
}

// Fig09 reproduces the per-query latency breakdown (Fig. 9) on SIFT:
// CPU-Base, NDP-Base, NDP-ETOpt with conventional 100 ns polling, and with
// adaptive polling. Values are normalized to the NDP-Base total.
func (r *Runner) Fig09() *Table {
	t := &Table{
		Title:  "Fig.9: latency breakdown on SIFT (normalized to NDP-Base total)",
		Header: []string{"design", "traversal", "offload", "distComp", "collect", "total"},
	}
	type variant struct {
		label  string
		design core.Design
		mutate func(*core.SystemConfig)
	}
	variants := []variant{
		{"CPU-Base", core.CPUBase, nil},
		{"NDP-Base", core.NDPBase, nil},
		{"NDP-ETOpt+ConvPoll", core.NDPETOpt, func(c *core.SystemConfig) {
			c.Poll = polling.Conventional{IntervalNs: 100}
		}},
		{"NDP-ETOpt+AdaptPoll", core.NDPETOpt, func(c *core.SystemConfig) {
			c.Poll = polling.Adaptive{}
		}},
	}
	type parts struct{ trav, off, dist, coll float64 }
	measured := make([]parts, len(variants))
	r.parMap(len(variants), func(i int) {
		v := variants[i]
		// Fig. 9 is a per-query latency breakdown: queries run one at a
		// time so the components reflect the latency chain rather than
		// saturation queueing.
		w, sys := r.system("SIFT", v.design, func(c *core.SystemConfig) {
			c.InFlightFactor = -1
			if v.mutate != nil {
				v.mutate(c)
			}
		})
		run := sys.RunHNSW(w.ds.Queries, 10, r.Scale.EfSearch)
		rep := run.Report
		nq := float64(len(rep.QueryLatencyNs))
		measured[i] = parts{rep.TraversalNs / nq, rep.OffloadNs / nq, rep.DistCompNs / nq, rep.CollectNs / nq}
	})
	var base float64
	for i, v := range variants {
		if v.label == "NDP-Base" {
			m := measured[i]
			base = m.trav + m.off + m.dist + m.coll
		}
	}
	for i, v := range variants {
		m := measured[i]
		total := m.trav + m.off + m.dist + m.coll
		t.Rows = append(t.Rows, []string{
			v.label, f2(m.trav / base), f2(m.off / base), f2(m.dist / base), f2(m.coll / base), f2(total / base),
		})
	}
	t.Notes = append(t.Notes,
		"paper: NDP-Base cuts latency 72.8% vs CPU; conventional polling costs 13%, adaptive polling reduces that overhead by 62%")
	return t
}

// Fig10 reproduces the fetch-utilization comparison (Fig. 10): effectual
// (accepted) versus ineffectual fetched lines for the six NDP designs.
func (r *Runner) Fig10() *Table {
	designs := []core.Design{core.NDPBase, core.NDPDimET, core.NDPBitET, core.NDPET, core.NDPETDual, core.NDPETOpt}
	t := &Table{
		Title:  "Fig.10: fetch utilization (effectual fraction of fetched lines)",
		Header: append([]string{"dataset"}, designStrings(designs)...),
	}
	nd := len(designs)
	utils := make([]string, len(AllProfiles)*nd)
	r.parMap(len(utils), func(i int) {
		name, d := AllProfiles[i/nd], designs[i%nd]
		w, sys := r.system(name, d, nil)
		run := sys.RunHNSW(w.ds.Queries, 10, r.Scale.EfSearch)
		utils[i] = pct(run.Report.FetchUtilization())
	})
	for ni, name := range AllProfiles {
		t.Rows = append(t.Rows, append([]string{name}, utils[ni*nd:(ni+1)*nd]...))
	}
	t.Notes = append(t.Notes, "paper: utilization improves 6.0% -> 9.0% (ET) -> 11.1% (ETOpt) on average")
	return t
}

// Fig11 reproduces the sampling-parameter study (Fig. 11) on DEEP: KL
// divergence between the sampled ET-position distribution and the "true"
// distribution obtained from real queries with their true thresholds.
func (r *Runner) Fig11() *Table {
	w := r.load("DEEP")
	p := w.ds.Profile
	truth := r.trueETDistribution(w)

	t := &Table{
		Title:  "Fig.11: KL divergence of sampled ET distribution vs true (DEEP)",
		Header: []string{"parameter", "value", "KL"},
	}
	klOf := func(sampleN int, thrPct float64) float64 {
		sample := sampleVectors(w.ds, sampleN, r.Scale.Seed+7)
		opts := layout.DefaultOptions()
		opts.ThresholdPercentile = thrPct
		an, err := layout.Analyze(sample, p.Elem, p.Metric, opts)
		if err != nil {
			return math.NaN()
		}
		dist := append(append([]float64{}, an.ETFreq...), an.NoTermFrac)
		return stats.KLDivergence(truth, dist)
	}
	type cell struct {
		param, value string
		n            int
		thr          float64
	}
	var cells []cell
	for _, n := range []int{10, 20, 50, 100} {
		cells = append(cells, cell{"#samples", fmt.Sprint(n), n, 0.90})
	}
	for _, thr := range []float64{0.98, 0.95, 0.90, 0.80, 0.50} {
		label := fmt.Sprintf("%.0f%% largest", 100*(1-thr))
		cells = append(cells, cell{"threshold", label, 100, thr})
	}
	kls := make([]float64, len(cells))
	r.parMap(len(cells), func(i int) { kls[i] = klOf(cells[i].n, cells[i].thr) })
	for i, c := range cells {
		t.Rows = append(t.Rows, []string{c.param, c.value, fmt.Sprintf("%.3f", kls[i])})
	}
	t.Notes = append(t.Notes,
		"paper: 50-100 samples suffice and the 10%-largest threshold is best; at this scale the in-search thresholds sit deeper in the pairwise distribution, shifting the best percentile toward the median (see EXPERIMENTS.md)")
	return t
}

// trueETDistribution computes the reference ET-position distribution from
// real queries on the full dataset: it replays the comparison tasks of an
// actual search run, each with the threshold the search carried at offload
// time — the distribution the offline sampling tries to approximate.
func (r *Runner) trueETDistribution(w *workload) []float64 {
	p := w.ds.Profile
	bits := p.Elem.Bits()
	hist := make([]float64, bits+1)
	_, sys := r.system("DEEP", core.CPUBase, nil)
	run := sys.RunHNSW(w.ds.Queries, 10, r.Scale.EfSearch)
	rng := stats.NewRNG(r.Scale.Seed + 13)
	for qi, tr := range run.Traces {
		q := w.ds.Queries[qi]
		for _, task := range tr.Tasks() {
			if rng.Float64() > 0.25 || math.IsInf(task.Threshold, 1) {
				continue // subsample for cost; skip unbounded warmup tasks
			}
			v := w.ds.Vectors[task.ID]
			codes := p.Elem.EncodeVector(v, nil)
			pos := layout.TerminationPosition(p.Elem, p.Metric, task.Threshold, q, codes)
			if pos > bits {
				hist[bits]++
			} else {
				hist[pos-1]++
			}
		}
	}
	return hist
}

// Fig12 reproduces the partitioning-scheme sweep (Fig. 12) on GIST with
// NDP-ETOpt, normalized to the hybrid 1 kB default.
func (r *Runner) Fig12() *Table {
	t := &Table{
		Title:  "Fig.12: vector data partitioning on GIST (NDP-ETOpt QPS, normalized to hybrid 1kB)",
		Header: []string{"scheme", "normQPS"},
	}
	type scheme struct {
		label string
		mut   func(*core.SystemConfig)
	}
	schemes := []scheme{
		{"vertical", func(c *core.SystemConfig) { c.Scheme = partition.Vertical }},
		{"hybrid-256B", func(c *core.SystemConfig) { c.SubVectorBytes = 256 }},
		{"hybrid-512B", func(c *core.SystemConfig) { c.SubVectorBytes = 512 }},
		{"hybrid-1kB", nil},
		{"hybrid-2kB", func(c *core.SystemConfig) { c.SubVectorBytes = 2048 }},
		{"horizontal", func(c *core.SystemConfig) { c.Scheme = partition.Horizontal }},
	}
	qpss := make([]float64, len(schemes))
	r.parMap(len(schemes), func(i int) {
		w, sys := r.system("GIST", core.NDPETOpt, schemes[i].mut)
		run := sys.RunHNSW(w.ds.Queries, 10, r.Scale.EfSearch)
		qpss[i] = r.timedReport(sys, run).QPS()
	})
	var base float64
	for i, sc := range schemes {
		if sc.label == "hybrid-1kB" {
			base = qpss[i]
		}
	}
	for i, sc := range schemes {
		t.Rows = append(t.Rows, []string{sc.label, f2(qpss[i] / base)})
	}
	t.Notes = append(t.Notes,
		"paper: hybrid 1kB is best; ET shifts the sweet spot toward longer sub-vectors (in this reproduction the crossover sits at even larger S — see EXPERIMENTS.md)")
	return t
}

// sampleVectors draws n distinct vectors from the dataset.
func sampleVectors(ds *dataset.Dataset, n int, seed uint64) [][]float32 {
	if n > len(ds.Vectors) {
		n = len(ds.Vectors)
	}
	rng := stats.NewRNG(seed)
	perm := rng.Perm(len(ds.Vectors))
	out := make([][]float32, n)
	for i := 0; i < n; i++ {
		out[i] = ds.Vectors[perm[i]]
	}
	return out
}

func designNames() []string {
	out := make([]string, len(core.AllDesigns))
	for i, d := range core.AllDesigns {
		out[i] = d.String()
	}
	return out
}

func designStrings(ds []core.Design) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

// FigTieredFrontier maps the recall/traffic frontier of the tiered
// bound-first/exact-rerank pipeline (ROADMAP item 3) against the two pure
// paths it sits between: the NDP beam search (cheap, recall saturates
// below 1 as efSearch grows) and the exact ET scan (recall 1 by
// construction, the traffic ceiling). Every point is an independent cell
// with a private ETEngine, and every reported quantity — recall against
// the ground truth, mean fetched lines per query, mean re-rank pool — is
// deterministic, so parallel and serial renders are byte-identical.
func (r *Runner) FigTieredFrontier() *Table {
	t := &Table{
		Title:  "Frontier: tiered pipeline vs pure paths (recall@10 vs lines/query)",
		Header: []string{"dataset", "path", "knob", "recall@10", "lines/query", "pool/query"},
	}
	type cell struct {
		name   string
		path   string
		knob   string
		ef     int     // beam cells
		budget float64 // tiered cells
	}
	var cells []cell
	for _, name := range []string{"SIFT", "GIST"} {
		for _, ef := range []int{10, 40, 160} {
			cells = append(cells, cell{name: name, path: "beam", knob: fmt.Sprintf("ef=%d", ef), ef: ef})
		}
		cells = append(cells, cell{name: name, path: "exact", knob: "-"})
		for _, b := range []float64{0.8, 0.9, 0.95, 1} {
			cells = append(cells, cell{name: name, path: "tiered", knob: fmt.Sprintf("B=%.2f", b), budget: b})
		}
	}
	rows := make([][]string, len(cells))
	r.parMap(len(cells), func(i int) {
		c := cells[i]
		w, sys := r.system(c.name, core.NDPETOpt, nil)
		nq := float64(len(w.ds.Queries))
		// idsOf converts one result list to ids; each cell needs its own
		// scratch because cells run concurrently.
		scratch := make([]uint32, 0, 10)
		idsOf := func(nn []hnsw.Neighbor) []uint32 {
			scratch = scratch[:0]
			for _, n := range nn {
				scratch = append(scratch, n.ID)
			}
			return scratch
		}
		switch c.path {
		case "beam":
			run := sys.RunHNSW(w.ds.Queries, 10, c.ef)
			lines := float64(run.Report.EffectualLines + run.Report.IneffectualLines)
			rows[i] = []string{c.name, c.path, c.knob,
				fmt.Sprintf("%.3f", recallOf(w, run)), f1(lines / nq), "-"}
		case "exact":
			eng := sys.Store.NewETEngine(w.ds.Profile.Metric)
			sum, lines := 0.0, 0
			for qi, q := range w.ds.Queries {
				nn, l := eng.ExactKNN(q, 10)
				lines += l
				sum += dataset.RecallAtK(idsOf(nn), w.gt[qi])
			}
			rows[i] = []string{c.name, c.path, c.knob,
				fmt.Sprintf("%.3f", sum/nq), f1(float64(lines) / nq), "-"}
		case "tiered":
			eng := sys.Store.NewETEngine(w.ds.Profile.Metric)
			var dst []hnsw.Neighbor
			sum := 0.0
			lines, poolSz := 0, 0
			for qi, q := range w.ds.Queries {
				var st core.TieredStats
				dst, st = eng.TieredKNNInto(nil, q, 10, core.TieredOpts{Budget: c.budget}, dst)
				lines += st.BoundLines + st.RerankLines
				poolSz += st.Pool
				sum += dataset.RecallAtK(idsOf(dst), w.gt[qi])
			}
			rows[i] = []string{c.name, c.path, c.knob,
				fmt.Sprintf("%.3f", sum/nq), f1(float64(lines) / nq), f1(float64(poolSz) / nq)}
		}
	})
	t.Rows = rows
	t.Notes = append(t.Notes,
		"tiered B=1 reaches recall 1.000 below the exact scan's traffic; the beam path stays cheapest but its recall saturates below 1")
	return t
}

// FigPrecisionFrontier measures adaptive mixed-precision search (ROADMAP
// item 4) against fixed-depth execution at matched recall targets, on both
// query paths. The fixed arm is the plain system; the adaptive arm is a
// system built through the RecallTarget knob, so the kmeans-radius depth
// map and its engine wiring under test are exactly what Database users get.
// On the beam path the per-partition schedule caps how deep an accepted
// comparison refines (the escalation margin re-fetches only margin-tight
// candidates); on the tiered path it governs the stage-1 bound depth and
// shrinks the re-rank pool. Speedup is fixed lines over adaptive lines at
// the same target; the recall columns verify the match. Every cell owns a
// private adaptive system and a clock-free tuner, so parallel and serial
// renders are byte-identical.
func (r *Runner) FigPrecisionFrontier() *Table {
	t := &Table{
		Title:  "Precision frontier: fixed-depth vs adaptive mixed-precision (matched recall)",
		Header: []string{"dataset", "target", "path", "arm", "recall@10", "lines/query", "pool/query", "speedup"},
	}
	type cell struct {
		name   string
		target float64
	}
	var cells []cell
	for _, name := range []string{"DEEP", "GloVe", "GIST"} {
		for _, tgt := range []float64{0.9, 0.95} {
			cells = append(cells, cell{name: name, target: tgt})
		}
	}
	rows := make([][][]string, len(cells))
	r.parMap(len(cells), func(i int) {
		c := cells[i]
		w, fixSys := r.system(c.name, core.NDPETOpt, nil)
		_, adSys := r.system(c.name, core.NDPETOpt, func(cfg *core.SystemConfig) {
			cfg.RecallTarget = c.target
		})
		nq := float64(len(w.ds.Queries))
		beam := func(sys *core.System) (float64, float64) {
			run := sys.RunHNSW(w.ds.Queries, 10, r.Scale.EfSearch)
			lines := float64(run.Report.EffectualLines + run.Report.IneffectualLines)
			return recallOf(w, run), lines / nq
		}
		fixRec, fixLines := beam(fixSys)
		adRec, adLines := beam(adSys)

		scratch := make([]uint32, 0, 10)
		idsOf := func(nn []hnsw.Neighbor) []uint32 {
			scratch = scratch[:0]
			for _, n := range nn {
				scratch = append(scratch, n.ID)
			}
			return scratch
		}
		var dst []hnsw.Neighbor
		tiered := func(sys *core.System, opts func() core.TieredOpts, observe func(core.TieredStats)) (float64, float64, float64) {
			eng := sys.Store.NewETEngine(w.ds.Profile.Metric)
			sum := 0.0
			lines, pool := 0, 0
			for qi, q := range w.ds.Queries {
				var st core.TieredStats
				dst, st = eng.TieredKNNInto(nil, q, 10, opts(), dst)
				lines += st.BoundLines + st.RerankLines
				pool += st.Pool
				sum += dataset.RecallAtK(idsOf(dst), w.gt[qi])
				if observe != nil {
					observe(st)
				}
			}
			return sum / nq, float64(lines) / nq, float64(pool) / nq
		}
		tfRec, tfLines, tfPool := tiered(fixSys, func() core.TieredOpts {
			return core.TieredOpts{Budget: c.target}
		}, nil)
		tuner := precision.NewTuner(c.target)
		taRec, taLines, taPool := tiered(adSys, func() core.TieredOpts {
			return core.TieredOpts{
				Budget: tuner.Budget(), MaxBoundLines: -1, Precision: adSys.Precision,
				DepthBias: tuner.DepthBias(), EscalateMargin: tuner.Margin(),
			}
		}, func(st core.TieredStats) { tuner.Observe(10, st.Pool, st.AtRisk) })

		tgt := fmt.Sprintf("%.2f", c.target)
		rows[i] = [][]string{
			{c.name, tgt, "beam", "fixed", fmt.Sprintf("%.3f", fixRec), f1(fixLines), "-", "-"},
			{c.name, tgt, "beam", "adaptive", fmt.Sprintf("%.3f", adRec), f1(adLines), "-", f2(fixLines / adLines)},
			{c.name, tgt, "tiered", "fixed", fmt.Sprintf("%.3f", tfRec), f1(tfLines), f1(tfPool), "-"},
			{c.name, tgt, "tiered", "adaptive", fmt.Sprintf("%.3f", taRec), f1(taLines), f1(taPool), f2(tfLines / taLines)},
		}
	})
	for _, quad := range rows {
		t.Rows = append(t.Rows, quad...)
	}
	t.Notes = append(t.Notes,
		"beam: the per-partition schedule caps accepted-comparison depth, so line traffic drops at unchanged recall — the headline speedup (BenchmarkAdaptivePrecision gates it in time)",
		"tiered: the schedule deepens stage-1 bounds for loose partitions, trading bound lines for a much smaller exact re-rank pool at the same target")
	return t
}
