// Package leakcheck is the shared goroutine-leak settle check used by the
// chaos soaks and the concurrency test suites: capture a baseline before
// the noisy phase, then require the goroutine count to settle back to
// (about) that baseline once the phase ends, polling with patience instead
// of sampling once — goroutine teardown is asynchronous, so a single
// instantaneous read flakes.
package leakcheck

import (
	"fmt"
	"runtime"
	"time"
)

// DefaultSlack is how many goroutines above baseline still count as
// settled; runtime helpers (timer goroutines, finalizers) come and go.
const DefaultSlack = 2

// DefaultPatience bounds how long Settle polls before declaring a leak.
const DefaultPatience = 3 * time.Second

// Baseline samples the current goroutine count after giving in-flight
// teardown a moment to finish, so the later settle target is not inflated
// by goroutines that were already dying.
func Baseline() int {
	time.Sleep(50 * time.Millisecond)
	return runtime.NumGoroutine()
}

// Settle polls until the goroutine count drops to base+DefaultSlack or
// DefaultPatience elapses, returning a descriptive error on a leak.
func Settle(base int) error {
	return SettleWithin(base, DefaultSlack, DefaultPatience)
}

// SettleWithin is Settle with explicit slack and patience.
func SettleWithin(base, slack int, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		if g := runtime.NumGoroutine(); g <= base+slack {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine leak: %d alive, baseline %d (slack %d)",
				runtime.NumGoroutine(), base, slack)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TB is the subset of testing.TB the test adapter needs, declared locally
// so the package stays importable from non-test binaries (the chaos
// soaks).
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// SettleT is the test-suite adapter: fail the test on a leak.
func SettleT(t TB, base int) {
	t.Helper()
	if err := Settle(base); err != nil {
		t.Fatalf("%v", err)
	}
}
