// Package wal implements the write-ahead log behind the live mutable
// index: an append-only journal of mutation records with per-record
// CRC32C framing and fsync-on-ack durability. The contract mirrors the v3
// snapshot format's hardening (raw magic before any parsing, checksums
// verified before a payload byte is trusted, a typed corruption-error
// taxonomy) but adapted to a log: a crash can tear only the *tail* of the
// file, so recovery replays the longest valid record prefix and truncates
// whatever follows. A record is acknowledged only after the fsync that
// made it durable returned, so the truncated tail never contains an
// acknowledged write.
//
// On-disk layout:
//
//	header:  "ANSMETWAL1\n"                        (11 bytes)
//	record:  type uint8 | seq uint64 LE | len uint32 LE | payload | crc32c uint32 LE
//
// The CRC covers type, seq, len and payload. Sequence numbers are
// strictly contiguous (seq = previous + 1, starting at base+1 where base
// is the snapshot's compaction point); a gap or regression marks the
// record invalid even if its CRC holds, because it can only arise from a
// corrupt or mismatched journal.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// header is the raw byte prefix of every journal file.
var header = []byte("ANSMETWAL1\n")

// recordOverhead is the framing cost of one record: type (1) + seq (8) +
// payload length (4) + trailing CRC32C (4).
const recordOverhead = 1 + 8 + 4 + 4

// MaxPayload bounds a single record's payload. Anything larger in a
// length field is treated as corruption rather than allocated.
const MaxPayload = 1 << 26 // 64 MiB

// Typed corruption errors, matched with errors.Is — the journal analogue
// of the snapshot taxonomy (ErrSnapshotBadMagic / Truncated / Checksum).
var (
	// ErrBadMagic reports a file that is not an ANSMETWAL1 journal at all.
	// Unlike tail corruption this is never recoverable by truncation: the
	// file belongs to something else and must not be overwritten blindly.
	ErrBadMagic = errors.New("wal: not an ANSMETWAL1 journal")
	// ErrTruncated reports a record cut short — the frame or payload ends
	// before its declared length (the normal torn-tail crash signature).
	ErrTruncated = errors.New("wal: truncated record")
	// ErrChecksum reports a record whose CRC32C does not match its bytes.
	ErrChecksum = errors.New("wal: record checksum mismatch")
	// ErrBadSequence reports a record whose sequence number is not the
	// predecessor's + 1 (a corrupt or mismatched journal).
	ErrBadSequence = errors.New("wal: record out of sequence")
	// ErrClosed reports an append to a closed log.
	ErrClosed = errors.New("wal: log is closed")
)

// castagnoli is the CRC32C table (same polynomial as the snapshot footer).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journal entry: an opaque payload tagged with a caller-
// defined type byte and the log's monotone sequence number.
type Record struct {
	Type    uint8
	Seq     uint64
	Payload []byte
}

// Scan parses a journal image and returns the longest valid record
// suffix newer than seq base: records must be strictly contiguous within
// the file, records with seq <= base are skipped (already folded into the
// snapshot — the legitimate state after a crash between snapshot write
// and journal truncation), and the first record's seq must not leave a
// gap above base. Also returned are the byte offset where valid data ends
// and the error that stopped the scan (nil when the image ends exactly on
// a record boundary). Scan never panics on arbitrary input (FuzzWALReplay
// asserts this); the returned records alias data.
func Scan(data []byte, base uint64) (recs []Record, validEnd int, err error) {
	if len(data) < len(header) {
		if !headerPrefix(data) {
			return nil, 0, fmt.Errorf("%w (short header)", ErrBadMagic)
		}
		return nil, 0, fmt.Errorf("%w: %d bytes is shorter than the header", ErrTruncated, len(data))
	}
	if !headerPrefix(data[:len(header)]) {
		return nil, 0, fmt.Errorf("%w (bad header)", ErrBadMagic)
	}
	off := len(header)
	seq := uint64(0)
	first := true
	for off < len(data) {
		rest := data[off:]
		if len(rest) < recordOverhead {
			return recs, off, fmt.Errorf("%w: %d trailing bytes at offset %d", ErrTruncated, len(rest), off)
		}
		plen := binary.LittleEndian.Uint32(rest[9:13])
		if plen > MaxPayload {
			return recs, off, fmt.Errorf("%w: declared payload %d exceeds limit at offset %d", ErrChecksum, plen, off)
		}
		total := recordOverhead + int(plen)
		if len(rest) < total {
			return recs, off, fmt.Errorf("%w: record needs %d bytes, %d remain at offset %d",
				ErrTruncated, total, len(rest), off)
		}
		frame := rest[:total-4]
		wantCRC := binary.LittleEndian.Uint32(rest[total-4 : total])
		if got := crc32.Checksum(frame, castagnoli); got != wantCRC {
			return recs, off, fmt.Errorf("%w: crc32c %08x, frame says %08x at offset %d",
				ErrChecksum, got, wantCRC, off)
		}
		rseq := binary.LittleEndian.Uint64(rest[1:9])
		if first {
			if rseq > base+1 {
				return recs, off, fmt.Errorf("%w: journal starts at seq %d, snapshot covers through %d at offset %d",
					ErrBadSequence, rseq, base, off)
			}
			first = false
		} else if rseq != seq+1 {
			return recs, off, fmt.Errorf("%w: got seq %d after %d at offset %d",
				ErrBadSequence, rseq, seq, off)
		}
		seq = rseq
		if rseq > base {
			recs = append(recs, Record{Type: rest[0], Seq: rseq, Payload: frame[13:]})
		}
		off += total
	}
	return recs, off, nil
}

// headerPrefix reports whether b is a prefix of the journal header.
func headerPrefix(b []byte) bool {
	if len(b) > len(header) {
		return false
	}
	for i := range b {
		if b[i] != header[i] {
			return false
		}
	}
	return true
}

// Log is an open journal positioned for appending. Not safe for
// concurrent use; callers serialize on their mutation writer lock.
type Log struct {
	f      *os.File
	path   string
	seq    uint64 // last sequence number present in the file (or base)
	buf    []byte // append frame scratch
	closed bool
}

// Open opens (or creates) the journal at path and recovers it: existing
// records with seq > base are passed to replay in order, a torn tail —
// any invalid suffix — is truncated away, and the log is positioned for
// appending with the next sequence number following the last valid
// record. base is the snapshot's compaction point: records with seq <=
// base were already folded into the snapshot and are skipped (they are
// legitimately present after a crash between snapshot write and journal
// truncation).
//
// A file whose header is not a journal header fails with ErrBadMagic
// (nothing is truncated — the file is not ours to rewrite). A replay
// callback error aborts recovery and closes the file: the journal did not
// match the snapshot it was opened against, which truncation must not
// paper over.
func Open(path string, base uint64, replay func(Record) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: reading journal: %w", err)
	}
	l := &Log{f: f, path: path, seq: base}
	if len(data) == 0 {
		// Fresh journal: write the header durably before the first append.
		if err := l.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return l, nil
	}
	recs, validEnd, scanErr := Scan(data, base)
	if scanErr != nil && errors.Is(scanErr, ErrBadMagic) {
		f.Close()
		return nil, scanErr
	}
	for _, r := range recs {
		if replay != nil {
			if err := replay(r); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: replaying record seq %d: %w", r.Seq, err)
			}
		}
		l.seq = r.Seq
	}
	if scanErr != nil {
		// Torn or corrupt tail: drop it. Everything before validEnd was
		// CRC-verified and contiguous; everything after was never
		// acknowledged (the ack is the fsync of a complete record).
		if err := f.Truncate(int64(validEnd)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing truncation: %w", err)
		}
		if validEnd < len(header) {
			// The crash tore the header itself — no record can have been
			// acknowledged (the header is written and fsynced before the
			// first append), so a fresh header restores an empty journal.
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: seeking to journal start: %w", err)
			}
			if err := l.writeHeader(); err != nil {
				f.Close()
				return nil, err
			}
			return l, nil
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seeking to journal end: %w", err)
	}
	return l, nil
}

// writeHeader writes and fsyncs the magic header of a fresh journal.
func (l *Log) writeHeader() error {
	if _, err := l.f.Write(header); err != nil {
		return fmt.Errorf("wal: writing journal header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing journal header: %w", err)
	}
	return nil
}

// Append journals one record and makes it durable: the frame is written
// and fsynced before Append returns, so a returned sequence number IS the
// acknowledgment — a crash at any later byte offset cannot lose it.
func (l *Log) Append(typ uint8, payload []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload %d exceeds limit %d", len(payload), MaxPayload)
	}
	seq := l.seq + 1
	need := recordOverhead + len(payload)
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	b := l.buf[:need]
	b[0] = typ
	binary.LittleEndian.PutUint64(b[1:9], seq)
	binary.LittleEndian.PutUint32(b[9:13], uint32(len(payload)))
	copy(b[13:], payload)
	crc := crc32.Checksum(b[:13+len(payload)], castagnoli)
	binary.LittleEndian.PutUint32(b[13+len(payload):], crc)
	if _, err := l.f.Write(b); err != nil {
		return 0, fmt.Errorf("wal: appending record: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: syncing record: %w", err)
	}
	l.seq = seq
	return seq, nil
}

// LastSeq returns the sequence number of the last durable record (the
// compaction base when the journal is empty).
func (l *Log) LastSeq() uint64 { return l.seq }

// Path returns the journal's file path.
func (l *Log) Path() string { return l.path }

// Reset truncates the journal back to its bare header — the snapshot
// compaction point. The caller must have durably persisted a snapshot
// covering every journaled record first; sequence numbering continues
// from the current point, so records appended after Reset replay
// correctly against that snapshot.
func (l *Log) Reset() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(int64(len(header))); err != nil {
		return fmt.Errorf("wal: truncating journal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing truncation: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("wal: seeking to journal end: %w", err)
	}
	return nil
}

// Close releases the file handle. Further appends fail with ErrClosed.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
