package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// appendN opens a fresh log and appends n records with recognizable
// payloads, returning the file's bytes.
func appendN(t *testing.T, path string, n int) []byte {
	t.Helper()
	l, err := Open(path, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < n; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 5+i)
		seq, err := l.Append(uint8(i%3+1), payload)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return data
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	appendN(t, path, 7)

	var got []Record
	l, err := Open(path, 0, func(r Record) error {
		p := make([]byte, len(r.Payload))
		copy(p, r.Payload)
		got = append(got, Record{Type: r.Type, Seq: r.Seq, Payload: p})
		return nil
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if len(got) != 7 {
		t.Fatalf("replayed %d records, want 7", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Type != uint8(i%3+1) || len(r.Payload) != 5+i || r.Payload[0] != byte(i+1) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	if l.LastSeq() != 7 {
		t.Fatalf("LastSeq %d, want 7", l.LastSeq())
	}
	// Appends continue the sequence.
	seq, err := l.Append(1, []byte("x"))
	if err != nil || seq != 8 {
		t.Fatalf("Append after replay: seq %d err %v", seq, err)
	}
}

func TestOpenSkipsCompactedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	appendN(t, path, 5)
	var seqs []uint64
	l, err := Open(path, 3, func(r Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatalf("Open(base=3): %v", err)
	}
	defer l.Close()
	if len(seqs) != 2 || seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("replayed seqs %v, want [4 5]", seqs)
	}
}

// TestTornTailEveryOffset is the crash-point property at the journal
// layer: for EVERY byte offset, a journal cut there recovers exactly the
// records whose complete frames fit before the cut, and the torn tail is
// truncated away so subsequent appends produce a valid journal again.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := appendN(t, filepath.Join(dir, "full.wal"), 4)

	// recordEnds[i] = file size after i complete records.
	var recordEnds []int
	recs, _, err := Scan(full, 0)
	if err != nil || len(recs) != 4 {
		t.Fatalf("Scan full: %d recs, err %v", len(recs), err)
	}
	off := len(header)
	recordEnds = append(recordEnds, off)
	for _, r := range recs {
		off += recordOverhead + len(r.Payload)
		recordEnds = append(recordEnds, off)
	}
	if off != len(full) {
		t.Fatalf("scan ended at %d, file is %d", off, len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs := 0
		for _, end := range recordEnds[1:] {
			if cut >= end {
				wantRecs++
			}
		}
		var n int
		l, err := Open(path, 0, func(r Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if n != wantRecs {
			l.Close()
			t.Fatalf("cut %d: replayed %d records, want %d", cut, n, wantRecs)
		}
		// The journal must be append-ready: add a record and re-verify.
		if _, err := l.Append(9, []byte("post-crash")); err != nil {
			t.Fatalf("cut %d: Append after recovery: %v", cut, err)
		}
		l.Close()
		data, _ := os.ReadFile(path)
		recs, _, err := Scan(data, 0)
		if err != nil {
			t.Fatalf("cut %d: re-scan after recovery append: %v", cut, err)
		}
		if len(recs) != wantRecs+1 {
			t.Fatalf("cut %d: %d records after recovery append, want %d", cut, len(recs), wantRecs+1)
		}
	}
}

func TestBitFlipYieldsChecksumError(t *testing.T) {
	full := appendN(t, filepath.Join(t.TempDir(), "j.wal"), 3)
	// Flip one payload byte of the second record.
	recs, _, _ := Scan(full, 0)
	secondStart := len(header) + recordOverhead + len(recs[0].Payload)
	mut := bytes.Clone(full)
	mut[secondStart+14] ^= 0x40
	got, _, err := Scan(mut, 0)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("Scan error %v, want ErrChecksum", err)
	}
	if len(got) != 1 {
		t.Fatalf("valid prefix %d records, want 1", len(got))
	}
}

func TestBadMagicRejectedWithoutTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-wal")
	content := []byte("precious user data that is not a journal")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path, 0, nil)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Open error %v, want ErrBadMagic", err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(after, content) {
		t.Fatal("Open modified a non-journal file")
	}
}

func TestSequenceGapStopsReplay(t *testing.T) {
	full := appendN(t, filepath.Join(t.TempDir(), "j.wal"), 3)
	recs, _, _ := Scan(full, 0)
	rec1Len := recordOverhead + len(recs[0].Payload)
	// Splice record 1 out: the journal now starts at seq 2, a gap above a
	// seq-0 snapshot — corruption, not a compaction state.
	spliced := append(bytes.Clone(full[:len(header)]), full[len(header)+rec1Len:]...)
	got, _, err := Scan(spliced, 0)
	if !errors.Is(err, ErrBadSequence) {
		t.Fatalf("Scan error %v, want ErrBadSequence", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d records, want 0", len(got))
	}
	// A mid-file gap (records 1 then 3) also stops after the valid prefix.
	rec2Len := recordOverhead + len(recs[1].Payload)
	gapped := append(bytes.Clone(full[:len(header)+rec1Len]), full[len(header)+rec1Len+rec2Len:]...)
	got, _, err = Scan(gapped, 0)
	if !errors.Is(err, ErrBadSequence) {
		t.Fatalf("Scan error %v, want ErrBadSequence", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1", len(got))
	}
}

func TestResetCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, err := Open(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	// Post-compaction appends continue the sequence (4, 5, ...).
	seq, err := l.Append(2, []byte("after"))
	if err != nil || seq != 4 {
		t.Fatalf("Append after Reset: seq %d err %v", seq, err)
	}
	l.Close()

	// Reopening against a snapshot at seq 3 replays only the new record.
	var seqs []uint64
	l2, err := Open(path, 3, func(r Record) error { seqs = append(seqs, r.Seq); return nil })
	if err != nil {
		t.Fatalf("reopen after Reset: %v", err)
	}
	defer l2.Close()
	if len(seqs) != 1 || seqs[0] != 4 {
		t.Fatalf("replayed %v, want [4]", seqs)
	}
}

func TestReplayErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	appendN(t, path, 2)
	boom := errors.New("boom")
	_, err := Open(path, 0, func(r Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Open error %v, want wrapped boom", err)
	}
}

func TestClosedAppend(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "j.wal"), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log: %v, want ErrClosed", err)
	}
}

// FuzzScan asserts the parser never panics and always yields a valid
// record prefix on arbitrary bytes (the library-level half of
// FuzzWALReplay; the database-level half lives in the root package).
func FuzzScan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ANSMETWAL1\n"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	seedPath := filepath.Join(f.TempDir(), "seed.wal")
	l, err := Open(seedPath, 0, nil)
	if err == nil {
		l.Append(1, []byte("abc"))
		l.Append(2, []byte("defgh"))
		l.Close()
		if data, err := os.ReadFile(seedPath); err == nil {
			f.Add(data)
			f.Add(data[:len(data)-3])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validEnd, err := Scan(data, 0)
		if validEnd < 0 || validEnd > len(data) {
			t.Fatalf("validEnd %d outside [0, %d]", validEnd, len(data))
		}
		if err == nil && len(data) >= len(header) && validEnd != len(data) {
			t.Fatalf("nil error but validEnd %d != len %d", validEnd, len(data))
		}
		last := uint64(0)
		for _, r := range recs {
			if r.Seq != last+1 {
				t.Fatalf("non-contiguous seq %d after %d", r.Seq, last)
			}
			last = r.Seq
		}
	})
}
