// Package dataset provides seeded synthetic vector datasets whose profiles
// (element type, dimension, metric, and value distribution) match the
// billion-scale public benchmarks of the paper's Table 2, scaled to
// laptop-size populations. The generators are parameterized so that the
// bit-prefix statistics driving early termination — a low-entropy common
// prefix followed by a high-entropy range (Fig. 3) — resemble each real
// dataset's structure, which is what the ET results depend on (see
// DESIGN.md, substitutions table).
package dataset

import (
	"fmt"
	"math"
	"sort"

	"ansmet/internal/stats"
	"ansmet/internal/vecmath"
)

// Profile describes a dataset family.
type Profile struct {
	Name   string
	Metric vecmath.Metric
	Elem   vecmath.ElemType
	Dim    int

	// PaperVectors documents the population of the original benchmark.
	PaperVectors string

	// Value-distribution parameters. Vectors are drawn from a Gaussian
	// mixture: per-cluster centers uniform in [CenterLo, CenterHi] per
	// dimension, plus N(0, NoiseStd) noise, clamped to [ClampLo, ClampHi].
	// With probability OutlierRate an element is redrawn uniformly from the
	// clamp range, producing the rare prefix-breaking outliers that the
	// outlier-aware prefix elimination handles.
	Clusters           int
	CenterLo, CenterHi float64
	NoiseStd           float64
	ClampLo, ClampHi   float64
	OutlierRate        float64
	NormalizeVectors   bool // pre-normalization (cosine-style preprocessing)

	// ScaleJitter is the sigma of a per-vector lognormal factor applied to
	// the noise. Without it, iid high-dimensional noise makes all pairwise
	// distances concentrate around one value (concentration of measure),
	// which real feature datasets do not exhibit; the jitter restores the
	// distance spread that early-termination behaviour depends on.
	ScaleJitter float64
}

// Profiles mirrors the paper's Table 2, in the same order.
var Profiles = []Profile{
	{Name: "SIFT", Metric: vecmath.L2, Elem: vecmath.Uint8, Dim: 128, PaperVectors: "1M",
		Clusters: 32, CenterLo: 0, CenterHi: 60, NoiseStd: 14, ClampLo: 0, ClampHi: 130,
		OutlierRate: 0.002, ScaleJitter: 0.35},
	{Name: "BigANN", Metric: vecmath.L2, Elem: vecmath.Uint8, Dim: 128, PaperVectors: "1B",
		Clusters: 48, CenterLo: 0, CenterHi: 70, NoiseStd: 16, ClampLo: 0, ClampHi: 160,
		OutlierRate: 0.002, ScaleJitter: 0.35},
	{Name: "SPACEV", Metric: vecmath.L2, Elem: vecmath.Int8, Dim: 100, PaperVectors: "1B",
		Clusters: 32, CenterLo: 12, CenterHi: 26, NoiseStd: 2.2, ClampLo: -30, ClampHi: 31,
		OutlierRate: 0.0006, ScaleJitter: 0.15},
	{Name: "DEEP", Metric: vecmath.L2, Elem: vecmath.Float32, Dim: 96, PaperVectors: "1B",
		Clusters: 32, CenterLo: 0.06, CenterHi: 0.30, NoiseStd: 0.05, ClampLo: 0.01, ClampHi: 0.49,
		OutlierRate: 0.001, ScaleJitter: 0.7},
	{Name: "GloVe", Metric: vecmath.InnerProduct, Elem: vecmath.Float32, Dim: 100, PaperVectors: "1.2M",
		Clusters: 32, CenterLo: -0.6, CenterHi: 0.6, NoiseStd: 0.25, ClampLo: -2.5, ClampHi: 2.5,
		OutlierRate: 0.001, ScaleJitter: 0.3},
	{Name: "Txt2Img", Metric: vecmath.InnerProduct, Elem: vecmath.Float32, Dim: 200, PaperVectors: "1B",
		Clusters: 48, CenterLo: -0.25, CenterHi: 0.25, NoiseStd: 0.10, ClampLo: -1, ClampHi: 1,
		OutlierRate: 0.001, ScaleJitter: 0.3, NormalizeVectors: true},
	{Name: "GIST", Metric: vecmath.L2, Elem: vecmath.Float32, Dim: 960, PaperVectors: "1M",
		Clusters: 24, CenterLo: 0.05, CenterHi: 0.22, NoiseStd: 0.035, ClampLo: 0.01, ClampHi: 0.40,
		OutlierRate: 0.0005, ScaleJitter: 1.0},
}

// ProfileByName finds a profile; it panics on unknown names to keep
// experiment configuration errors loud.
func ProfileByName(name string) Profile {
	for _, p := range Profiles {
		if p.Name == name {
			return p
		}
	}
	panic(fmt.Sprintf("dataset: unknown profile %q", name))
}

// Dataset is a generated vector population plus a query set.
type Dataset struct {
	Profile Profile
	Vectors [][]float32
	Queries [][]float32
}

// Generate draws n database vectors and nq queries from the profile's
// distribution, all exactly representable in the profile's element type.
// Queries come from the same mixture (so they are near some database
// vectors, as the paper assumes when picking ET thresholds).
func Generate(p Profile, n, nq int, seed uint64) *Dataset {
	rng := stats.NewRNG(seed)
	centers := make([][]float64, p.Clusters)
	for c := range centers {
		ctr := make([]float64, p.Dim)
		for d := range ctr {
			ctr[d] = p.CenterLo + rng.Float64()*(p.CenterHi-p.CenterLo)
		}
		centers[c] = ctr
	}
	draw := func(r *stats.RNG) []float32 {
		ctr := centers[r.Intn(len(centers))]
		scale := 1.0
		if p.ScaleJitter > 0 {
			scale = math.Exp(r.NormFloat64() * p.ScaleJitter)
		}
		v := make([]float32, p.Dim)
		for d := range v {
			x := ctr[d] + r.NormFloat64()*p.NoiseStd*scale
			if p.OutlierRate > 0 && r.Float64() < p.OutlierRate {
				x = p.ClampLo + r.Float64()*(p.ClampHi-p.ClampLo)
			}
			if x < p.ClampLo {
				x = p.ClampLo
			}
			if x > p.ClampHi {
				x = p.ClampHi
			}
			v[d] = p.Elem.Quantize(float32(x))
		}
		if p.NormalizeVectors {
			vecmath.Normalize(v)
			for d := range v {
				v[d] = p.Elem.Quantize(v[d])
			}
		}
		return v
	}
	ds := &Dataset{Profile: p}
	vr := rng.Fork()
	for i := 0; i < n; i++ {
		ds.Vectors = append(ds.Vectors, draw(vr))
	}
	qr := rng.Fork()
	for i := 0; i < nq; i++ {
		ds.Queries = append(ds.Queries, draw(qr))
	}
	return ds
}

// Neighbor is one (id, distance) search result.
type Neighbor struct {
	ID   uint32
	Dist float64
}

// BruteForceKNN returns the exact k nearest vectors to q, sorted by
// ascending distance (ties broken by id for determinism).
func (ds *Dataset) BruteForceKNN(q []float32, k int) []Neighbor {
	res := make([]Neighbor, 0, len(ds.Vectors))
	for i, v := range ds.Vectors {
		res = append(res, Neighbor{ID: uint32(i), Dist: ds.Profile.Metric.Distance(q, v)})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].ID < res[j].ID
	})
	if k > len(res) {
		k = len(res)
	}
	return res[:k]
}

// GroundTruth computes the exact top-k ids for every query.
func (ds *Dataset) GroundTruth(k int) [][]uint32 {
	out := make([][]uint32, len(ds.Queries))
	for i, q := range ds.Queries {
		nn := ds.BruteForceKNN(q, k)
		ids := make([]uint32, len(nn))
		for j, n := range nn {
			ids[j] = n.ID
		}
		out[i] = ids
	}
	return out
}

// RecallAtK returns |got ∩ truth| / |truth| — the recall@k definition used
// throughout the paper's evaluation (Fig. 8).
func RecallAtK(got, truth []uint32) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[uint32]bool, len(truth))
	for _, id := range truth {
		set[id] = true
	}
	hit := 0
	for _, id := range got {
		if set[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// ZipfQueryStream returns nq query indices drawn from a Zipf distribution
// over the query set — the skewed workload of §5.3's load-balance study.
func ZipfQueryStream(rng *stats.RNG, alpha float64, nQueries, n int) []int {
	z := stats.NewZipf(rng, alpha, nQueries)
	out := make([]int, n)
	for i := range out {
		out[i] = z.Next()
	}
	return out
}

// Codes encodes all database vectors into order-preserving element codes.
func (ds *Dataset) Codes() [][]uint32 {
	out := make([][]uint32, len(ds.Vectors))
	for i, v := range ds.Vectors {
		out[i] = ds.Profile.Elem.EncodeVector(v, nil)
	}
	return out
}
