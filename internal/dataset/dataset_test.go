package dataset

import (
	"math"
	"testing"

	"ansmet/internal/stats"
	"ansmet/internal/vecmath"
)

func TestProfilesMatchTable2(t *testing.T) {
	want := []struct {
		name   string
		metric vecmath.Metric
		elem   vecmath.ElemType
		dim    int
	}{
		{"SIFT", vecmath.L2, vecmath.Uint8, 128},
		{"BigANN", vecmath.L2, vecmath.Uint8, 128},
		{"SPACEV", vecmath.L2, vecmath.Int8, 100},
		{"DEEP", vecmath.L2, vecmath.Float32, 96},
		{"GloVe", vecmath.InnerProduct, vecmath.Float32, 100},
		{"Txt2Img", vecmath.InnerProduct, vecmath.Float32, 200},
		{"GIST", vecmath.L2, vecmath.Float32, 960},
	}
	if len(Profiles) != len(want) {
		t.Fatalf("%d profiles, want %d", len(Profiles), len(want))
	}
	for i, w := range want {
		p := Profiles[i]
		if p.Name != w.name || p.Metric != w.metric || p.Elem != w.elem || p.Dim != w.dim {
			t.Errorf("profile %d = %s/%v/%v/%d, want %s/%v/%v/%d",
				i, p.Name, p.Metric, p.Elem, p.Dim, w.name, w.metric, w.elem, w.dim)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if ProfileByName("GIST").Dim != 960 {
		t.Error("GIST lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown profile did not panic")
		}
	}()
	ProfileByName("nope")
}

func TestGenerateDeterministic(t *testing.T) {
	p := ProfileByName("SIFT")
	a := Generate(p, 50, 5, 7)
	b := Generate(p, 50, 5, 7)
	for i := range a.Vectors {
		for d := range a.Vectors[i] {
			if a.Vectors[i][d] != b.Vectors[i][d] {
				t.Fatal("same seed produced different vectors")
			}
		}
	}
	c := Generate(p, 50, 5, 8)
	diff := false
	for i := range a.Vectors {
		for d := range a.Vectors[i] {
			if a.Vectors[i][d] != c.Vectors[i][d] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateRepresentable(t *testing.T) {
	for _, p := range Profiles {
		ds := Generate(p, 30, 3, 1)
		if len(ds.Vectors) != 30 || len(ds.Queries) != 3 {
			t.Fatalf("%s: wrong counts", p.Name)
		}
		for _, v := range ds.Vectors {
			if len(v) != p.Dim {
				t.Fatalf("%s: dim %d, want %d", p.Name, len(v), p.Dim)
			}
			for _, x := range v {
				if p.Elem.Quantize(x) != x {
					t.Fatalf("%s: value %v not representable in %v", p.Name, x, p.Elem)
				}
				if math.IsNaN(float64(x)) {
					t.Fatalf("%s: NaN generated", p.Name)
				}
			}
		}
	}
}

func TestGenerateRangeRespected(t *testing.T) {
	for _, p := range Profiles {
		if p.NormalizeVectors {
			continue // normalization rescales values
		}
		ds := Generate(p, 100, 0, 3)
		for _, v := range ds.Vectors {
			for _, x := range v {
				if float64(x) < p.ClampLo-0.5 || float64(x) > p.ClampHi+0.5 {
					t.Fatalf("%s: value %v outside clamp [%v,%v]", p.Name, x, p.ClampLo, p.ClampHi)
				}
			}
		}
	}
}

func TestClusteredStructure(t *testing.T) {
	// Vectors must be closer to their nearest neighbors than to random
	// vectors on average — i.e. the mixture produces real cluster structure.
	p := ProfileByName("DEEP")
	ds := Generate(p, 300, 0, 5)
	r := stats.NewRNG(9)
	nnSum, randSum := 0.0, 0.0
	for i := 0; i < 50; i++ {
		q := ds.Vectors[r.Intn(len(ds.Vectors))]
		nn := ds.BruteForceKNN(q, 5)
		nnSum += nn[4].Dist // 5th neighbor (skip self at rank 0)
		j := r.Intn(len(ds.Vectors))
		randSum += p.Metric.Distance(q, ds.Vectors[j])
	}
	if nnSum >= randSum {
		t.Errorf("no cluster structure: nn dist sum %v >= random %v", nnSum, randSum)
	}
}

func TestBruteForceKNNSorted(t *testing.T) {
	p := ProfileByName("SIFT")
	ds := Generate(p, 200, 1, 11)
	nn := ds.BruteForceKNN(ds.Queries[0], 10)
	if len(nn) != 10 {
		t.Fatalf("got %d neighbors", len(nn))
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].Dist < nn[i-1].Dist {
			t.Fatal("neighbors not sorted")
		}
	}
	// Exhaustive check of the top-1.
	best := math.Inf(1)
	var bestID uint32
	for i, v := range ds.Vectors {
		d := p.Metric.Distance(ds.Queries[0], v)
		if d < best {
			best, bestID = d, uint32(i)
		}
	}
	if nn[0].ID != bestID {
		t.Errorf("top-1 = %d, want %d", nn[0].ID, bestID)
	}
}

func TestBruteForceKNNClampsK(t *testing.T) {
	p := ProfileByName("SIFT")
	ds := Generate(p, 5, 1, 11)
	if got := len(ds.BruteForceKNN(ds.Queries[0], 50)); got != 5 {
		t.Errorf("k larger than N returned %d results", got)
	}
}

func TestRecallAtK(t *testing.T) {
	truth := []uint32{1, 2, 3, 4}
	if r := RecallAtK([]uint32{1, 2, 3, 4}, truth); r != 1 {
		t.Errorf("perfect recall = %v", r)
	}
	if r := RecallAtK([]uint32{1, 2, 9, 8}, truth); r != 0.5 {
		t.Errorf("half recall = %v", r)
	}
	if r := RecallAtK(nil, truth); r != 0 {
		t.Errorf("empty recall = %v", r)
	}
	if r := RecallAtK([]uint32{1}, nil); r != 1 {
		t.Errorf("empty truth recall = %v", r)
	}
}

func TestGroundTruth(t *testing.T) {
	p := ProfileByName("SPACEV")
	ds := Generate(p, 100, 4, 13)
	gt := ds.GroundTruth(3)
	if len(gt) != 4 {
		t.Fatalf("ground truth for %d queries", len(gt))
	}
	for qi, ids := range gt {
		nn := ds.BruteForceKNN(ds.Queries[qi], 3)
		for j := range ids {
			if ids[j] != nn[j].ID {
				t.Fatalf("query %d: gt %v != brute %v", qi, ids, nn)
			}
		}
	}
}

func TestZipfQueryStream(t *testing.T) {
	r := stats.NewRNG(17)
	s := ZipfQueryStream(r, 2.0, 100, 10000)
	counts := make(map[int]int)
	for _, q := range s {
		if q < 0 || q >= 100 {
			t.Fatalf("query index %d out of range", q)
		}
		counts[q]++
	}
	if counts[0] < counts[50]*5 {
		t.Errorf("zipf stream not skewed: head %d vs mid %d", counts[0], counts[50])
	}
}

func TestCodes(t *testing.T) {
	p := ProfileByName("SIFT")
	ds := Generate(p, 20, 0, 19)
	codes := ds.Codes()
	for i, cs := range codes {
		for d, c := range cs {
			if got := float32(p.Elem.Decode(c)); got != ds.Vectors[i][d] {
				t.Fatalf("code round trip failed at %d/%d", i, d)
			}
		}
	}
}

// TestPrefixStructure confirms the generated profiles produce the Fig. 3
// bit statistics: a low-entropy common prefix for the prefix-friendly
// datasets (DEEP, GIST, SPACEV), and high first-bit entropy for the
// sign-mixed IP datasets (GloVe).
func TestPrefixStructure(t *testing.T) {
	entropyAt := func(p Profile, bits int) float64 {
		ds := Generate(p, 200, 0, 23)
		counts := make(map[uint32]float64)
		w := uint(p.Elem.Bits())
		for _, v := range ds.Vectors {
			for _, x := range v {
				counts[p.Elem.Encode(x)>>(w-uint(bits))]++
			}
		}
		weights := make([]float64, 0, len(counts))
		for _, c := range counts {
			weights = append(weights, c)
		}
		return stats.Entropy(weights)
	}
	for _, name := range []string{"DEEP", "GIST", "SPACEV"} {
		if e := entropyAt(ProfileByName(name), 2); e > 0.2 {
			t.Errorf("%s: top-2-bit entropy %v, want low-entropy common prefix", name, e)
		}
	}
	if e := entropyAt(ProfileByName("GloVe"), 1); e < 0.4 {
		t.Errorf("GloVe: sign-bit entropy %v, want mixed signs", e)
	}
}
