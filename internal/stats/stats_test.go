package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(1)
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Errorf("bucket %d count %d far from expected %d", i, b, n/10)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 2.0, 1000)
	counts := make([]int, 1000)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// With alpha=2 the first item should dominate: p(0) = 1/zeta-ish ~ 0.6.
	if counts[0] < n/3 {
		t.Errorf("zipf(2.0) head count %d, expected heavy skew (> %d)", counts[0], n/3)
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Errorf("zipf counts not decreasing: %d %d %d", counts[0], counts[1], counts[10])
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("Percentile of empty slice should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestMeanGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with non-positive input should be NaN")
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if d := KLDivergence(p, p); d != 0 {
		t.Errorf("KL(p||p) = %v, want 0", d)
	}
	q := []float64{0.9, 0.1}
	d := KLDivergence(p, q)
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", d, want)
	}
	if KLDivergence([]float64{1, 0}, []float64{0.5, 0.5}) < 0 {
		t.Error("KL should be non-negative")
	}
}

func TestKLDivergenceProperties(t *testing.T) {
	// Non-negativity over random distributions.
	f := func(a, b [8]uint8) bool {
		p := make([]float64, 8)
		q := make([]float64, 8)
		ps, qs := 0.0, 0.0
		for i := 0; i < 8; i++ {
			p[i] = float64(a[i])
			q[i] = float64(b[i]) + 1 // keep q strictly positive
			ps += p[i]
			qs += q[i]
		}
		if ps == 0 {
			return true
		}
		return KLDivergence(p, q) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Total() != 12 {
		t.Errorf("Total = %d, want 12", h.Total())
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d count %d, want 1", i, c)
		}
	}
	n := h.Normalized()
	sum := 0.0
	for _, w := range n {
		sum += w
	}
	if math.Abs(sum-10.0/12) > 1e-12 {
		t.Errorf("normalized in-range mass %v, want %v", sum, 10.0/12)
	}
}

func TestEntropy(t *testing.T) {
	if e := Entropy([]float64{1, 1}); math.Abs(e-math.Ln2) > 1e-12 {
		t.Errorf("entropy of uniform-2 = %v, want ln2", e)
	}
	if e := Entropy([]float64{1, 0, 0}); e != 0 {
		t.Errorf("entropy of point mass = %v, want 0", e)
	}
	if e := Entropy(nil); e != 0 {
		t.Errorf("entropy of empty = %v, want 0", e)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(9)
	f1 := r.Fork()
	f2 := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("forked streams overlap: %d identical of 100", same)
	}
}
