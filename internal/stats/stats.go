// Package stats provides small statistical utilities shared across the
// ANSMET reproduction: deterministic pseudo-random number generation,
// percentiles, histograms, KL divergence, and mean helpers.
//
// Everything here is dependency-free and deterministic so that experiments
// are exactly reproducible from a seed.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** variant). It is intentionally independent of math/rand so
// that results are stable across Go releases.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed using splitmix64 expansion.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator; useful to give each subsystem its
// own stream while keeping the whole experiment reproducible.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Zipf samples from a Zipf distribution over [0, n) with exponent alpha > 0
// using inverse-CDF over precomputed weights. Build once, sample many.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf constructs a Zipf sampler over n items with the given exponent.
func NewZipf(rng *RNG, alpha float64, n int) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// KLDivergence computes D_KL(p || q) over two discrete distributions given
// as (possibly unnormalized) non-negative weight vectors of equal length.
// Bins where p is zero contribute nothing. Bins where p > 0 but q == 0 are
// smoothed with a tiny epsilon so the divergence stays finite, mirroring the
// practical treatment in the paper's sampling-quality study (Fig. 11).
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stats: KLDivergence length mismatch %d vs %d", len(p), len(q)))
	}
	const eps = 1e-12
	ps, qs := 0.0, 0.0
	for i := range p {
		ps += p[i]
		qs += q[i]
	}
	if ps == 0 || qs == 0 {
		return math.NaN()
	}
	d := 0.0
	for i := range p {
		pi := p[i] / ps
		if pi == 0 {
			continue
		}
		qi := q[i] / qs
		if qi < eps {
			qi = eps
		}
		d += pi * math.Log(pi/qi)
	}
	return d
}

// Histogram is a fixed-bin histogram over [min, max).
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	under    uint64
	over     uint64
	total    uint64
}

// NewHistogram creates a histogram with the given bin count over [min, max).
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Min {
		h.under++
		return
	}
	if x >= h.Max {
		h.over++
		return
	}
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() uint64 { return h.total }

// Normalized returns the in-range bin weights as probabilities summing to
// the in-range fraction of all observations.
func (h *Histogram) Normalized() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Entropy computes the Shannon entropy (nats) of a discrete distribution
// given as non-negative weights; zero weights contribute nothing.
func Entropy(weights []float64) float64 {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		return 0
	}
	e := 0.0
	for _, w := range weights {
		if w == 0 {
			continue
		}
		p := w / sum
		e -= p * math.Log(p)
	}
	return e
}
