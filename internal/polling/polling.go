// Package polling models how the host CPU retrieves distance-comparison
// results from the NDP units (paper §5.4). The host cannot be interrupted
// by a DIMM, so it polls each queried NDP unit with DDR READs. The
// conventional policy polls at a fixed interval from offload; ANSMET's
// adaptive policy estimates each batch's completion time from the
// sampling-derived distribution of per-task fetch counts and aims the first
// poll there, cutting both wasted polls and retrieval delay.
package polling

import "math"

// Policy decides poll times for one offloaded batch.
type Policy interface {
	// Schedule returns the sequence generator of poll times for a batch
	// offloaded at time t0 with the given per-task expected service model.
	// next(i) returns the time of the i-th poll (i >= 0), strictly
	// increasing.
	Schedule(t0 float64, est BatchEstimate) func(i int) float64
	// Name identifies the policy in reports.
	Name() string
}

// BatchEstimate summarizes what the host knows about a batch when it
// offloads it: how many tasks went to the unit and the expected service
// time of each (from the preprocessing line distribution).
type BatchEstimate struct {
	Tasks        int
	MeanTaskNs   float64
	P90TaskNs    float64
	QueueAheadNs float64 // estimated backlog on the unit at offload
}

// Plan is a poll-time sequence in value form: At(i) returns the time of
// the i-th poll (i >= 0), strictly increasing. It computes exactly what the
// corresponding Schedule closure computes — same operations, same rounding
// — but as a plain value, so the simulator's replay loop can obtain a
// schedule per (unit, hop) without a closure allocation.
type Plan struct {
	linear bool
	t0, iv float64 // linear: poll i at t0 + (i+1)*iv

	first, retry, fineUntil, maxRetry float64 // backoff (Adaptive)
}

// At returns the time of the i-th poll.
func (p Plan) At(i int) float64 {
	if p.linear {
		return p.t0 + float64(i+1)*p.iv
	}
	t := p.first
	step := p.retry
	for j := 0; j < i; j++ {
		t += step
		if t > p.fineUntil {
			step *= 2
			if step > p.maxRetry {
				step = p.maxRetry
			}
		}
	}
	return t
}

// RetrieveAt is RetrieveAt specialised to a Plan, avoiding the function
// value at the call site.
func (p Plan) RetrieveAt(done float64, maxPolls int) (at float64, polls int) {
	for i := 0; i < maxPolls; i++ {
		t := p.At(i)
		if t >= done {
			return t, i + 1
		}
	}
	return p.At(maxPolls - 1), maxPolls
}

// Planner is implemented by policies whose schedule can be expressed as a
// Plan value. Hot loops prefer it over Schedule to avoid allocating the
// returned closure; both forms must produce identical poll times.
type Planner interface {
	Plan(t0 float64, est BatchEstimate) Plan
}

// Conventional polls every IntervalNs after the offload (the paper's
// baseline uses a fixed 100 ns interval, Fig. 9).
type Conventional struct {
	IntervalNs float64
}

// Name implements Policy.
func (c Conventional) Name() string { return "conventional" }

// Plan implements Planner.
func (c Conventional) Plan(t0 float64, _ BatchEstimate) Plan {
	iv := c.IntervalNs
	if iv <= 0 {
		iv = 100
	}
	return Plan{linear: true, t0: t0, iv: iv}
}

// Schedule implements Policy.
func (c Conventional) Schedule(t0 float64, est BatchEstimate) func(i int) float64 {
	return c.Plan(t0, est).At
}

// Adaptive aims the first poll at the estimated batch completion time —
// the sum of per-task expected latencies plus the unit's backlog, i.e. the
// addition of the task distributions the paper describes — then retries
// with exponential backoff so a poor estimate (e.g. under heavy cross-query
// contention) degrades gracefully toward fixed-interval behaviour instead
// of spamming the bus.
type Adaptive struct {
	// RetryNs is the first retry interval after the estimate (default
	// 25 ns); subsequent retries double up to MaxRetryNs.
	RetryNs float64
	// MaxRetryNs caps the backoff (default 200 ns).
	MaxRetryNs float64
	// Safety scales the estimate (default 1.0).
	Safety float64
}

// Name implements Policy.
func (a Adaptive) Name() string { return "adaptive" }

// Plan implements Planner. The first poll aims slightly below the
// estimated completion (estimates carry error in both directions; polling a
// touch early costs one cheap retry, polling late costs real latency), then
// retries at a fine, estimate-proportional pitch that doubles once past the
// expected window.
func (a Adaptive) Plan(t0 float64, est BatchEstimate) Plan {
	safety := a.Safety
	if safety <= 0 {
		safety = 0.95
	}
	maxRetry := a.MaxRetryNs
	if maxRetry <= 0 {
		maxRetry = 100
	}
	expect := math.Max(est.QueueAheadNs+float64(est.Tasks)*est.MeanTaskNs, 1)
	retry := a.RetryNs
	if retry <= 0 {
		retry = math.Max(10, 0.1*expect)
	}
	return Plan{
		first:     t0 + expect*safety,
		retry:     retry,
		fineUntil: t0 + expect*2,
		maxRetry:  maxRetry,
	}
}

// Schedule implements Policy.
func (a Adaptive) Schedule(t0 float64, est BatchEstimate) func(i int) float64 {
	return a.Plan(t0, est).At
}

// RetrieveAt returns the first poll time that observes a result completed
// at done, plus the number of polls issued up to and including it. Poll
// costs (bus occupancy) are charged by the caller per poll.
func RetrieveAt(next func(i int) float64, done float64, maxPolls int) (at float64, polls int) {
	for i := 0; i < maxPolls; i++ {
		t := next(i)
		if t >= done {
			return t, i + 1
		}
	}
	return next(maxPolls - 1), maxPolls
}

// TaskEstimator converts a fetched-lines distribution (from
// layout.Analysis.LineDistribution) into per-task service-time moments
// given the per-line fetch cost of the target unit.
type TaskEstimator struct {
	MeanLines float64
	P90Lines  float64
}

// NewTaskEstimator computes distribution moments. dist[i] is the
// probability of fetching exactly i+1 lines.
func NewTaskEstimator(dist []float64) TaskEstimator {
	mean, cum, p90 := 0.0, 0.0, 0.0
	for i, p := range dist {
		mean += float64(i+1) * p
		cum += p
		if p90 == 0 && cum >= 0.9 {
			p90 = float64(i + 1)
		}
	}
	if p90 == 0 {
		p90 = float64(len(dist))
	}
	return TaskEstimator{MeanLines: mean, P90Lines: p90}
}

// Estimate builds a BatchEstimate for a batch of n tasks with the given
// per-line service cost, per-task fixed cost, and unit backlog.
func (e TaskEstimator) Estimate(n int, perLineNs, taskFixedNs, backlogNs float64) BatchEstimate {
	return BatchEstimate{
		Tasks:        n,
		MeanTaskNs:   e.MeanLines*perLineNs + taskFixedNs,
		P90TaskNs:    e.P90Lines*perLineNs + taskFixedNs,
		QueueAheadNs: backlogNs,
	}
}
