package polling

import (
	"math"
	"testing"
)

func TestConventionalSchedule(t *testing.T) {
	p := Conventional{IntervalNs: 100}
	next := p.Schedule(1000, BatchEstimate{})
	if next(0) != 1100 || next(1) != 1200 || next(4) != 1500 {
		t.Errorf("conventional polls at %v,%v,%v", next(0), next(1), next(4))
	}
	// Default interval.
	next = Conventional{}.Schedule(0, BatchEstimate{})
	if next(0) != 100 {
		t.Errorf("default interval first poll at %v", next(0))
	}
}

func TestAdaptiveSchedule(t *testing.T) {
	p := Adaptive{RetryNs: 25, Safety: 1.0}
	est := BatchEstimate{Tasks: 4, MeanTaskNs: 50, QueueAheadNs: 100}
	next := p.Schedule(1000, est)
	// First poll at t0 + backlog + 4*50 = 1300.
	if math.Abs(next(0)-1300) > 1e-9 {
		t.Errorf("adaptive first poll at %v, want 1300", next(0))
	}
	if math.Abs(next(1)-1325) > 1e-9 {
		t.Errorf("adaptive retry at %v, want 1325", next(1))
	}
}

func TestRetrieveAt(t *testing.T) {
	next := Conventional{IntervalNs: 100}.Schedule(0, BatchEstimate{})
	at, polls := RetrieveAt(next, 250, 100)
	if at != 300 || polls != 3 {
		t.Errorf("retrieve at %v with %d polls, want 300/3", at, polls)
	}
	// Result ready before first poll.
	at, polls = RetrieveAt(next, 10, 100)
	if at != 100 || polls != 1 {
		t.Errorf("early result: %v/%d, want 100/1", at, polls)
	}
	// Exact boundary counts as observed.
	at, polls = RetrieveAt(next, 200, 100)
	if at != 200 || polls != 2 {
		t.Errorf("boundary: %v/%d, want 200/2", at, polls)
	}
}

func TestAdaptiveBeatsConventionalOnDelay(t *testing.T) {
	// For a batch finishing at 950 ns, the conventional 100 ns policy polls
	// 10 times and retrieves at 1000; a well-estimated adaptive policy
	// polls once or twice and retrieves sooner (on average).
	done := 950.0
	conv := Conventional{IntervalNs: 100}.Schedule(0, BatchEstimate{})
	cAt, cPolls := RetrieveAt(conv, done, 1000)
	est := BatchEstimate{Tasks: 3, MeanTaskNs: 300, QueueAheadNs: 50}
	ad := Adaptive{RetryNs: 25, Safety: 0.95}.Schedule(0, est)
	aAt, aPolls := RetrieveAt(ad, done, 1000)
	if aPolls >= cPolls {
		t.Errorf("adaptive used %d polls vs conventional %d", aPolls, cPolls)
	}
	if aAt > cAt+50 {
		t.Errorf("adaptive retrieved at %v vs conventional %v", aAt, cAt)
	}
}

func TestTaskEstimator(t *testing.T) {
	// Distribution: 50% one line, 30% two, 20% five.
	dist := []float64{0.5, 0.3, 0, 0, 0.2}
	e := NewTaskEstimator(dist)
	if math.Abs(e.MeanLines-(0.5+0.6+1.0)) > 1e-9 {
		t.Errorf("mean lines = %v, want 2.1", e.MeanLines)
	}
	if e.P90Lines != 5 {
		t.Errorf("p90 = %v, want 5", e.P90Lines)
	}
	be := e.Estimate(4, 10, 0, 100)
	if math.Abs(be.MeanTaskNs-21) > 1e-9 || be.Tasks != 4 || be.QueueAheadNs != 100 {
		t.Errorf("estimate = %+v", be)
	}
}

func TestTaskEstimatorP90Fallback(t *testing.T) {
	e := NewTaskEstimator([]float64{0.4, 0.4}) // mass sums to 0.8
	if e.P90Lines != 2 {
		t.Errorf("fallback p90 = %v, want distribution length", e.P90Lines)
	}
}

func TestAdaptiveBackoffLadder(t *testing.T) {
	// Past the expected window the retry pitch doubles up to the cap, so a
	// badly underestimated batch costs O(log) polls, not O(n).
	est := BatchEstimate{Tasks: 1, MeanTaskNs: 100}
	next := Adaptive{RetryNs: 10, MaxRetryNs: 80, Safety: 1.0}.Schedule(0, est)
	_, polls := RetrieveAt(next, 2000, 1000)
	if polls > 40 {
		t.Errorf("backoff ladder used %d polls to cover 20x underestimate", polls)
	}
	// Strictly increasing times.
	prev := next(0)
	for i := 1; i < 20; i++ {
		cur := next(i)
		if cur <= prev {
			t.Fatalf("poll times not increasing at %d: %v <= %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestRetrieveAtExhaustsMaxPolls(t *testing.T) {
	next := Conventional{IntervalNs: 10}.Schedule(0, BatchEstimate{})
	at, polls := RetrieveAt(next, 1e12, 5)
	if polls != 5 || at != next(4) {
		t.Errorf("maxPolls clamp broken: %v/%d", at, polls)
	}
}
