package ansmet

import (
	"context"
	"fmt"
)

// Typed cancellation errors, matched with errors.Is. Every context-aware
// search entry point (SearchCtx, SearchManyCtx, ExactSearchCtx) returns a
// *CancelError wrapping one of these when the context expires or is
// cancelled; the wrapper additionally reports whether the accompanying
// result slice holds a usable partial answer.
var (
	// ErrDeadlineExceeded reports a search stopped by its context deadline.
	ErrDeadlineExceeded = fmt.Errorf("ansmet: search deadline exceeded")
	// ErrCanceled reports a search stopped by explicit context cancellation.
	ErrCanceled = fmt.Errorf("ansmet: search canceled")
)

// CancelError is the error returned by the context-aware search APIs when
// the context fires. It distinguishes the two outcomes a caller cares
// about:
//
//   - Partial == true: the search produced a usable prefix of the answer
//     (best results found so far, sorted). Serving layers can return these
//     with a "partial" marker instead of failing the request outright.
//   - Partial == false: the search aborted before producing anything; the
//     result slice is empty.
//
// CancelError matches both the package sentinels (ErrDeadlineExceeded,
// ErrCanceled) and the context package's sentinels via errors.Is, so
// callers holding only a context can classify without importing new names.
type CancelError struct {
	// Err is ErrDeadlineExceeded or ErrCanceled.
	Err error
	// Partial reports whether the returned results are a usable partial
	// answer (true) or the search aborted empty (false).
	Partial bool
}

func (e *CancelError) Error() string {
	if e.Partial {
		return e.Err.Error() + " (partial results available)"
	}
	return e.Err.Error() + " (aborted)"
}

// Unwrap exposes the sentinel for errors.Is(err, ErrDeadlineExceeded) etc.
func (e *CancelError) Unwrap() error { return e.Err }

// Is additionally matches the context package's sentinels, so
// errors.Is(err, context.DeadlineExceeded) works too.
func (e *CancelError) Is(target error) bool {
	switch target {
	case context.DeadlineExceeded:
		return e.Err == ErrDeadlineExceeded
	case context.Canceled:
		return e.Err == ErrCanceled
	}
	return false
}

// cancelErr maps the context's state to the package's typed error. Called
// only after the context has fired (or a cooperative checkpoint observed
// done); a context cancelled with a custom cause still classifies as
// ErrCanceled.
func cancelErr(ctx context.Context, partial bool) error {
	e := &CancelError{Err: ErrCanceled, Partial: partial}
	if ctx.Err() == context.DeadlineExceeded {
		e.Err = ErrDeadlineExceeded
	}
	return e
}

// SearchCtx is Search with cooperative cancellation: the traversal polls
// ctx.Done() at amortized checkpoints (every few hops — see
// internal/hnsw.SearchCancelInto) and stops within one checkpoint interval
// of the context firing. An already-expired context is rejected up front
// without touching the index. On cancellation the best results found so
// far are returned alongside a *CancelError whose Partial field reports
// whether they are usable.
//
// A search whose context never fires behaves exactly like Search and, at
// steady state, allocates nothing beyond the result slice (the checkpoint
// is a counter increment plus a non-blocking channel poll).
func (db *Database) SearchCtx(ctx context.Context, q []float32, k int) ([]Neighbor, error) {
	ef := 2 * k
	if ef < 32 {
		ef = 32
	}
	return db.SearchEfCtx(ctx, q, k, ef)
}

// SearchEfCtx is SearchCtx with an explicit beam width.
func (db *Database) SearchEfCtx(ctx context.Context, q []float32, k, ef int) ([]Neighbor, error) {
	return db.SearchCtxInto(ctx, q, k, ef, nil)
}

// SearchCtxInto is SearchEfCtx appending results into dst[:0]; with a
// reused dst the un-cancelled steady state performs zero heap allocations
// (gated by BenchmarkSearchWithDeadline in CI).
func (db *Database) SearchCtxInto(ctx context.Context, q []float32, k, ef int, dst []Neighbor) ([]Neighbor, error) {
	if err := ctx.Err(); err != nil {
		// Expired before we started: reject without touching the index.
		return nil, cancelErr(ctx, false)
	}
	if err := db.validateQuery(q, k, ef); err != nil {
		return nil, err
	}
	s := db.getScratch()
	defer db.putScratch(s)
	qq := s.quantize(q, db.opts.Elem)
	batch := db.sys.Cfg.BeamBatch
	if batch < 1 {
		batch = 1
	}
	out, cancelled := db.sys.Index.SearchCancelInto(ctx.Done(), qq, k, ef, batch, db.liveFilter, s.eng, nil, dst)
	if cancelled {
		return out, cancelErr(ctx, len(out) > 0)
	}
	return out, nil
}

// SearchFilteredCtx is SearchFiltered with cooperative cancellation: the
// traversal polls ctx.Done() at the same amortized checkpoints as
// SearchCtx, and the filtered result set built so far is returned with a
// *CancelError when the context fires. On a mutable database the
// tombstone filter rides the same path, applied in addition to the
// caller's predicate.
func (db *Database) SearchFilteredCtx(ctx context.Context, q []float32, k int, filter func(uint32) bool) ([]Neighbor, error) {
	ef := 2 * k
	if ef < 32 {
		ef = 32
	}
	return db.SearchFilteredCtxInto(ctx, q, k, ef, filter, nil)
}

// SearchFilteredCtxInto is SearchFilteredCtx with an explicit beam width,
// appending results into dst[:0]. With a reused dst and a closure-free
// predicate the un-cancelled steady state performs zero heap allocations
// beyond the combined-filter wrapper a mutable database needs to merge the
// predicate with its tombstone bitmap (immutable databases pass the
// predicate straight through).
func (db *Database) SearchFilteredCtxInto(ctx context.Context, q []float32, k, ef int, filter func(uint32) bool, dst []Neighbor) ([]Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, cancelErr(ctx, false)
	}
	if err := db.validateQuery(q, k, ef); err != nil {
		return nil, err
	}
	s := db.getScratch()
	defer db.putScratch(s)
	qq := s.quantize(q, db.opts.Elem)
	batch := db.sys.Cfg.BeamBatch
	if batch < 1 {
		batch = 1
	}
	out, cancelled := db.sys.Index.SearchCancelInto(ctx.Done(), qq, k, ef, batch, db.combineFilter(filter), s.eng, nil, dst)
	if cancelled {
		return out, cancelErr(ctx, len(out) > 0)
	}
	return out, nil
}

// ExactSearchCtx is ExactSearch with cooperative cancellation. On
// cancellation it returns the best neighbors over the prefix of the
// database scanned so far — a usable approximate answer, but NOT the exact
// one — together with a *CancelError (Partial reports whether any prefix
// was scanned). An already-expired context is rejected up front.
func (db *Database) ExactSearchCtx(ctx context.Context, q []float32, k int) ([]Neighbor, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, cancelErr(ctx, false)
	}
	nn, lines, cancelled, err := db.exactSearch(ctx.Done(), q, k)
	if err != nil {
		return nil, 0, err
	}
	if cancelled {
		return nn, lines, cancelErr(ctx, len(nn) > 0)
	}
	return nn, lines, nil
}

// SearchManyCtx is SearchMany with cooperative cancellation: workers stop
// claiming new queries within one query of the context firing, and the
// per-query traversals themselves observe the same done channel. On
// cancellation the per-query result slice is returned as-is — completed
// queries hold their results, unstarted ones are nil — together with a
// *CancelError whose Partial field reports whether any query completed.
func (db *Database) SearchManyCtx(ctx context.Context, queries [][]float32, k, ef, workers int) ([][]Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, cancelErr(ctx, false)
	}
	out, cancelled, err := db.searchMany(ctx.Done(), queries, k, ef, workers, RouteNDP)
	if err != nil {
		return nil, err
	}
	if cancelled {
		partial := false
		for _, r := range out {
			if r != nil {
				partial = true
				break
			}
		}
		return out, cancelErr(ctx, partial)
	}
	return out, nil
}
