//go:build !race

package ansmet_test

// raceEnabled reports whether the race detector is active; the allocation
// gates skip under it (the race runtime makes sync.Pool intentionally
// nondeterministic and instruments allocations).
const raceEnabled = false
