package ansmet_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ansmet"
	"ansmet/internal/dataset"
)

// TestTieredSearchMatchesExactSearch: the public tiered entry point at the
// default budget (1) returns byte-identical results to ExactSearch.
func TestTieredSearchMatchesExactSearch(t *testing.T) {
	db := benchDB()
	ds := benchData()
	var dst []ansmet.Neighbor
	for qi := 0; qi < 6; qi++ {
		want, _, err := db.ExactSearch(ds.Queries[qi], 10)
		if err != nil {
			t.Fatal(err)
		}
		var stats ansmet.TieredStats
		dst, stats, err = db.TieredSearchInto(ds.Queries[qi], 10, 0, dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(dst) != len(want) {
			t.Fatalf("q%d: %d results, want %d", qi, len(dst), len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("q%d result %d: %+v != %+v", qi, i, dst[i], want[i])
			}
		}
		if stats.Pool == 0 || stats.BoundLines == 0 {
			t.Fatalf("q%d: implausible stats %+v", qi, stats)
		}
	}
}

// TestTieredSteadyStateAllocs gates the tiered pipeline's zero-allocation
// invariant: once the scratch pools are warm, a TieredSearchInto query with
// a reused dst performs zero heap allocations.
func TestTieredSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	db := benchDB()
	ds := benchData()
	var (
		dst []ansmet.Neighbor
		err error
	)
	for i := 0; i < 4; i++ {
		if dst, _, err = db.TieredSearchInto(ds.Queries[i%len(ds.Queries)], 10, 0, dst); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		dst, _, err = db.TieredSearchInto(ds.Queries[i%len(ds.Queries)], 10, 0, dst)
		i++
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("TieredSearchInto allocates %.1f objects/query at steady state, want 0", avg)
	}
}

// TestSearchRoutedModes: explicit modes execute (and report) the named
// path, and the results match the path's dedicated entry point.
func TestSearchRoutedModes(t *testing.T) {
	db := benchDB()
	ds := benchData()
	ctx := context.Background()
	q := ds.Queries[0]

	nn, route, err := db.SearchRouted(ctx, q, 10, 64, ansmet.RouteNDP, nil)
	if err != nil || route != ansmet.RouteNDP {
		t.Fatalf("ndp: route=%v err=%v", route, err)
	}
	want, err := db.SearchEf(q, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if nn[i] != want[i] {
			t.Fatalf("ndp result %d: %+v != %+v", i, nn[i], want[i])
		}
	}

	nn, route, err = db.SearchRouted(ctx, q, 10, 64, ansmet.RouteTiered, nil)
	if err != nil || route != ansmet.RouteTiered {
		t.Fatalf("tiered: route=%v err=%v", route, err)
	}
	exact, _, err := db.ExactSearch(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if nn[i] != exact[i] {
			t.Fatalf("tiered result %d: %+v != %+v", i, nn[i], exact[i])
		}
	}

	nn, route, err = db.SearchRouted(ctx, q, 10, 64, ansmet.RouteExact, nil)
	if err != nil || route != ansmet.RouteExact {
		t.Fatalf("exact: route=%v err=%v", route, err)
	}
	for i := range exact {
		if nn[i] != exact[i] {
			t.Fatalf("exact result %d: %+v != %+v", i, nn[i], exact[i])
		}
	}

	st := db.RouterStats()
	if st.NDP == 0 || st.Tiered == 0 || st.Exact == 0 {
		t.Fatalf("router counters not advancing: %+v", st)
	}
}

// TestSearchRoutedAuto: without a deadline auto picks the tiered path
// (healthy, idle database); with an already-expired context it rejects up
// front like every Ctx entry point.
func TestSearchRoutedAuto(t *testing.T) {
	db := benchDB()
	ds := benchData()

	nn, route, err := db.SearchRouted(context.Background(), ds.Queries[0], 10, 64, ansmet.RouteAuto, nil)
	if err != nil || route != ansmet.RouteTiered {
		t.Fatalf("auto healthy idle: route=%v err=%v", route, err)
	}
	if len(nn) != 10 {
		t.Fatalf("auto returned %d results", len(nn))
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err = db.SearchRouted(expired, ds.Queries[0], 10, 64, ansmet.RouteAuto, nil)
	var ce *ansmet.CancelError
	if !errors.As(err, &ce) || ce.Partial {
		t.Fatalf("expired context: err=%v", err)
	}
}

// TestSearchRoutedBaseDesignDegradesTiered: on a Base design (no bound
// machinery) the tiered route degrades to the exact scan instead of
// failing.
func TestSearchRoutedBaseDesignDegradesTiered(t *testing.T) {
	p := dataset.ProfileByName("SIFT")
	ds := dataset.Generate(p, 300, 4, 7)
	db, err := ansmet.New(ds.Vectors, ansmet.Options{
		Metric: p.Metric, Elem: p.Elem, Design: ansmet.UseDesign(ansmet.CPUBase),
		EfConstruction: 60, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	nn, route, err := db.SearchRouted(context.Background(), ds.Queries[0], 5, 32, ansmet.RouteTiered, nil)
	if err != nil || route != ansmet.RouteExact {
		t.Fatalf("base tiered: route=%v err=%v", route, err)
	}
	want, _, err := db.ExactSearch(ds.Queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if nn[i] != want[i] {
			t.Fatalf("base tiered result %d: %+v != %+v", i, nn[i], want[i])
		}
	}
	// TieredSearch itself also degrades, reporting the whole population as
	// the pool.
	nn2, stats, err := db.TieredSearch(ds.Queries[0], 5)
	if err != nil || stats.Pool != db.Len() {
		t.Fatalf("base TieredSearch: stats=%+v err=%v", stats, err)
	}
	for i := range want {
		if nn2[i] != want[i] {
			t.Fatalf("base TieredSearch result %d: %+v != %+v", i, nn2[i], want[i])
		}
	}
}

// TestSearchManyRouted: a routed batch on every explicit path returns the
// same per-query results as the single-query routed path.
func TestSearchManyRouted(t *testing.T) {
	db := benchDB()
	ds := benchData()
	queries := ds.Queries[:6]
	for _, mode := range []ansmet.Route{ansmet.RouteNDP, ansmet.RouteTiered, ansmet.RouteExact} {
		out, route, err := db.SearchManyRouted(context.Background(), queries, 10, 64, 3, mode)
		if err != nil || route != mode {
			t.Fatalf("%v: route=%v err=%v", mode, route, err)
		}
		for qi, q := range queries {
			want, _, err := db.SearchRouted(context.Background(), q, 10, 64, mode, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(out[qi]) != len(want) {
				t.Fatalf("%v q%d: %d results, want %d", mode, qi, len(out[qi]), len(want))
			}
			for i := range want {
				if out[qi][i] != want[i] {
					t.Fatalf("%v q%d result %d: %+v != %+v", mode, qi, i, out[qi][i], want[i])
				}
			}
		}
	}
	// Expired context rejects up front.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := db.SearchManyRouted(expired, queries, 10, 64, 2, ansmet.RouteNDP)
	var ce *ansmet.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("expired batch: err=%v", err)
	}
}

// TestTieredBudgetKnob: Options.TieredBudget below 1 still returns k
// results and the explicit per-call budget overrides it.
func TestTieredBudgetKnob(t *testing.T) {
	p := dataset.ProfileByName("SIFT")
	ds := dataset.Generate(p, 400, 4, 11)
	db, err := ansmet.New(ds.Vectors, ansmet.Options{
		Metric: p.Metric, Elem: p.Elem, EfConstruction: 60, Seed: 11, TieredBudget: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	nn, stats, err := db.TieredSearch(ds.Queries[0], 5)
	if err != nil || len(nn) != 5 {
		t.Fatalf("budget 0.8: %d results err=%v (stats %+v)", len(nn), err, stats)
	}
	// Explicit budget 1 re-ranks at least as large a pool.
	_, stats1, err := db.TieredSearchInto(ds.Queries[0], 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Pool < stats.Pool {
		t.Fatalf("budget 1 pool %d < budget 0.8 pool %d", stats1.Pool, stats.Pool)
	}
}
