package ansmet

import (
	"context"

	"ansmet/internal/core"
)

// This file is the public face of adaptive mixed-precision search (ROADMAP
// item 4): the RecallTarget knob's runtime state, the per-query tiered
// option resolution shared by every tiered entry point, and the context
// plumbing that pins one calibrated budget across a cluster fan-out.

// adaptive reports whether this database runs adaptive mixed-precision
// (Options.RecallTarget in (0, 1) on an ET design).
func (db *Database) adaptive() bool { return db.tuner != nil }

// tieredOpts resolves the tiered pipeline options for one query. An
// explicit in-range budget wins; otherwise the recall-target tuner's
// calibrated budget (when adaptive) or the configured Options.TieredBudget
// applies. Adaptive databases additionally install the per-partition
// static depth map, the tuner's depth bias and the escalation margin.
func (db *Database) tieredOpts(budget float64) core.TieredOpts {
	if budget <= 0 || budget > 1 {
		if db.tuner != nil {
			budget = db.tuner.Budget()
		} else {
			budget = db.tieredBudget()
		}
	}
	opt := core.TieredOpts{Budget: budget}
	if db.tuner != nil && db.sys.Precision != nil {
		// The static map owns the per-vector depth, so the uniform cap
		// moves out of the way: -1 raises the escalation ceiling to the
		// never-fully-fetch maximum.
		opt.MaxBoundLines = -1
		opt.Precision = db.sys.Precision
		opt.DepthBias = db.tuner.DepthBias()
		opt.EscalateMargin = db.tuner.Margin()
	}
	return opt
}

// observeTiered feeds one tiered query's outcome back into the
// recall-target calibration (no-op when the database is not adaptive or
// the query was cancelled mid-flight).
func (db *Database) observeTiered(k int, st TieredStats) {
	if db.tuner == nil || st.Cancelled {
		return
	}
	db.tuner.Observe(k, st.Pool, st.AtRisk)
}

// budgetKey carries an explicit tiered cut budget through the cluster
// coordinator's context, the same pattern as routeKey: the lead shard
// resolves its calibrated budget once per query and every shard executes
// it, keeping the scatter-gather merge homogeneous (shard tuners calibrate
// independently and would otherwise drift apart).
type budgetKey struct{}

// WithTieredBudget returns a context carrying an explicit tiered cut
// budget in (0, 1] for the shard search functions. Out-of-range values are
// carried as-is and ignored at the point of use.
func WithTieredBudget(ctx context.Context, budget float64) context.Context {
	return context.WithValue(ctx, budgetKey{}, budget)
}

// tieredBudgetFrom extracts the carried budget; 0 (no value) defers to the
// database-level resolution in tieredOpts.
func tieredBudgetFrom(ctx context.Context) float64 {
	if b, ok := ctx.Value(budgetKey{}).(float64); ok {
		return b
	}
	return 0
}

// PrecisionStats reports the adaptive mixed-precision state: the static
// per-partition map's shape and the recall-target tuner's live
// calibration. Zero-valued (Enabled false) when Options.RecallTarget did
// not enable the machinery.
type PrecisionStats struct {
	Enabled bool
	// Target is the configured recall target; Budget, DepthBias and Margin
	// are the tuner's current calibration (see internal/precision).
	Target    float64
	Budget    float64
	DepthBias int
	Margin    float64
	// RiskEWMA and PoolPerK are the smoothed observations driving the
	// calibration; Observations counts tiered queries folded in.
	RiskEWMA     float64
	PoolPerK     float64
	Observations uint64
	// Clusters and MeanDepthLines describe the static map: partition count
	// and the population-mean minimum fetch depth in lines.
	Clusters       int
	MeanDepthLines float64
}

// PrecisionStats exposes the adaptive-precision calibration for monitoring
// (the serve layer publishes it under the "precision" debug-vars section).
func (db *Database) PrecisionStats() PrecisionStats {
	if db.tuner == nil {
		return PrecisionStats{}
	}
	snap := db.tuner.Snapshot()
	st := PrecisionStats{
		Enabled:      true,
		Target:       snap.Target,
		Budget:       snap.Budget,
		DepthBias:    snap.DepthBias,
		Margin:       snap.Margin,
		RiskEWMA:     snap.RiskEWMA,
		PoolPerK:     snap.PoolPerK,
		Observations: snap.Observations,
	}
	if pm := db.sys.Precision; pm != nil {
		st.Clusters = pm.Clusters
		st.MeanDepthLines = pm.MeanLines()
	}
	return st
}
