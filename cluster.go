package ansmet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ansmet/internal/backoff"
	"ansmet/internal/cluster"
	"ansmet/internal/hnsw"
	"ansmet/internal/kmeans"
)

// PartitionScheme selects how vectors are assigned to shards.
type PartitionScheme int

const (
	// PartitionHash shards by jump consistent hash on the vector id
	// (default): balanced, stateless, and stable — growing from N to N+1
	// shards moves only ~1/(N+1) of the vectors.
	PartitionHash PartitionScheme = iota
	// PartitionKMeans shards by k-means cluster of the vector values, so a
	// query's true neighbors concentrate on few shards. Merged results are
	// identical either way (the merge is over the full fan-out); the
	// scheme changes which shard does the finding, not what is found.
	PartitionKMeans
)

var partitionNames = [...]string{"hash", "kmeans"}

// String names the scheme.
func (p PartitionScheme) String() string {
	if p < 0 || int(p) >= len(partitionNames) {
		return fmt.Sprintf("PartitionScheme(%d)", int(p))
	}
	return partitionNames[p]
}

// ParsePartitionScheme maps a flag string to a scheme.
func ParsePartitionScheme(s string) (PartitionScheme, error) {
	for i, n := range partitionNames {
		if s == n {
			return PartitionScheme(i), nil
		}
	}
	return 0, fmt.Errorf("ansmet: unknown partition scheme %q (want hash or kmeans)", s)
}

// ClusterOptions configures NewCluster: how to partition, how to build each
// shard, and how the fault-tolerant fan-out behaves.
type ClusterOptions struct {
	// Shards is the shard count (default 1).
	Shards int
	// Partition selects the vector→shard assignment (default PartitionHash).
	Partition PartitionScheme
	// Build configures each shard Database exactly like New.
	Build Options

	// ShardTimeout is the absolute per-shard budget for requests without a
	// deadline; requests WITH a deadline always get a budget carved from it
	// (see internal/cluster). 0 leaves deadline-less requests unbounded.
	ShardTimeout time.Duration
	// MaxInFlightPerShard sheds per-shard overload (0 = unlimited).
	MaxInFlightPerShard int
	// DisableHedging turns off hedged requests to slow shards.
	DisableHedging bool
	// BreakerFailureThreshold is the consecutive failures that open a shard
	// breaker (default 3).
	BreakerFailureThreshold int
	// BreakerBackoff is the base of the jittered exponential probe backoff
	// (default 50ms).
	BreakerBackoff time.Duration
}

func (o ClusterOptions) fanoutConfig() cluster.Config {
	cfg := cluster.Config{
		ShardTimeout:        o.ShardTimeout,
		MaxInFlightPerShard: o.MaxInFlightPerShard,
		Hedge:               cluster.HedgeConfig{Disabled: o.DisableHedging},
		Breaker: cluster.BreakerConfig{
			FailureThreshold: o.BreakerFailureThreshold,
			Seed:             o.Build.Seed,
		},
	}
	if o.BreakerBackoff > 0 {
		cfg.Breaker.Backoff = backoff.Policy{Base: o.BreakerBackoff}
	}
	return cfg
}

// ShardFault is one entry of a degraded query's per-shard error taxonomy.
type ShardFault struct {
	// Shard is the failing shard's index.
	Shard int
	// Kind is the failure class: "crash", "timeout", "canceled",
	// "breaker-open", or "shed".
	Kind string
	// Err is the underlying cause.
	Err error
}

// ClusterResult is one scatter-gather search answer.
type ClusterResult struct {
	// Neighbors is the merged top-k in the canonical (Dist, ID) order —
	// with a healthy cluster, exactly what the unsharded search returns.
	Neighbors []Neighbor
	// Partial reports a degraded answer: at least one shard is missing
	// from the merge (down, slow, skipped, or shed).
	Partial bool
	// Faults says which shards degraded and how; nil when healthy.
	Faults []ShardFault
	// Hedged is how many hedge requests the query fired.
	Hedged int
}

// Cluster is a Database partitioned into independently searched shards
// behind a fault-tolerant scatter-gather coordinator. Build one with
// NewCluster or restore one with LoadClusterDir; search it with the Ctx
// family. Safe for concurrent use.
type Cluster struct {
	opts   ClusterOptions
	shards []*Database
	ids    [][]uint32 // shard-local row → global id
	coord  *cluster.Coordinator
	dim    int
	total  int
}

// minShardVectors is the smallest population a shard Database can be
// built over; smaller partitions are folded into the largest shard.
const minShardVectors = 2

// NewCluster partitions the vectors, builds one Database per (non-empty)
// shard, and wires the scatter-gather coordinator over them.
func NewCluster(vectors [][]float32, opts ClusterOptions) (*Cluster, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if len(vectors) == 0 {
		return nil, fmt.Errorf("ansmet: empty dataset")
	}
	assign, err := partitionVectors(vectors, opts)
	if err != nil {
		return nil, err
	}
	groups := make([][][]float32, opts.Shards)
	ids := make([][]uint32, opts.Shards)
	for i, s := range assign {
		groups[s] = append(groups[s], vectors[i])
		ids[s] = append(ids[s], uint32(i))
	}
	// Fold shards too small to build an index (offline layout sampling
	// needs at least minShardVectors) into the largest shard — these only
	// appear when a tiny dataset is cut many ways.
	big := -1
	for s := range groups {
		if len(groups[s]) >= minShardVectors && (big == -1 || len(groups[s]) > len(groups[big])) {
			big = s
		}
	}
	if big >= 0 {
		for s := range groups {
			if s != big && len(groups[s]) > 0 && len(groups[s]) < minShardVectors {
				groups[big] = append(groups[big], groups[s]...)
				ids[big] = append(ids[big], ids[s]...)
				groups[s], ids[s] = nil, nil
			}
		}
	}
	// Drop empty shards (tiny datasets or unlucky hashing): an empty shard
	// has nothing to search and Database refuses empty populations.
	var keptGroups [][][]float32
	var keptIDs [][]uint32
	for s := range groups {
		if len(groups[s]) > 0 {
			keptGroups = append(keptGroups, groups[s])
			keptIDs = append(keptIDs, ids[s])
		}
	}
	dbs := make([]*Database, len(keptGroups))
	errs := make([]error, len(keptGroups))
	var wg sync.WaitGroup
	for s := range keptGroups {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			dbs[s], errs[s] = New(keptGroups[s], opts.Build)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ansmet: building shard %d: %w", s, err)
		}
	}
	return assembleCluster(dbs, keptIDs, len(vectors), opts)
}

// assembleCluster wires built shard databases into a Cluster.
func assembleCluster(dbs []*Database, ids [][]uint32, total int, opts ClusterOptions) (*Cluster, error) {
	funcs := make([]cluster.ShardFunc, len(dbs))
	for s := range dbs {
		funcs[s] = shardSearchFunc(dbs[s], ids[s])
	}
	coord, err := cluster.New(funcs, opts.fanoutConfig())
	if err != nil {
		return nil, err
	}
	return &Cluster{
		opts: opts, shards: dbs, ids: ids, coord: coord,
		dim: dbs[0].sys.Dim, total: total,
	}, nil
}

// partitionVectors computes the vector→shard assignment.
func partitionVectors(vectors [][]float32, opts ClusterOptions) ([]int, error) {
	assign := make([]int, len(vectors))
	switch opts.Partition {
	case PartitionHash:
		for i := range vectors {
			assign[i] = jumpHash(uint64(i), opts.Shards)
		}
	case PartitionKMeans:
		res, err := kmeans.Run(vectors, kmeans.Config{K: opts.Shards, Seed: opts.Build.Seed + 1})
		if err != nil {
			return nil, fmt.Errorf("ansmet: kmeans partitioning: %w", err)
		}
		copy(assign, res.Assign)
	default:
		return nil, fmt.Errorf("ansmet: unknown partition scheme %d", int(opts.Partition))
	}
	return assign, nil
}

// jumpHash is Lamping & Veach's jump consistent hash: uniform over buckets,
// and growing the bucket count relocates only ~1/(n+1) of the keys.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// routeKey carries an explicit per-query Route through the coordinator's
// context to the shard search functions, keeping the cluster.ShardFunc
// signature (and every byte-identity property of the default path) intact.
type routeKey struct{}

// WithRoute returns a context carrying an explicit shard-level route.
// Contexts without one execute the default NDP beam path.
func WithRoute(ctx context.Context, r Route) context.Context {
	return context.WithValue(ctx, routeKey{}, r)
}

// routeFrom extracts the carried route; the default is RouteNDP, the
// historical path (routing is strictly opt-in).
func routeFrom(ctx context.Context) Route {
	if r, ok := ctx.Value(routeKey{}).(Route); ok {
		return r
	}
	return RouteNDP
}

// shardSearchFunc adapts one shard Database into the coordinator's shard
// interface: search shard-locally on the context-selected route, then remap
// local row ids to global vector ids and restore the canonical (Dist, ID)
// order the merge needs. On the tiered route each shard returns its exact
// top-k (budget 1), so the merged result is the exact global top-k.
func shardSearchFunc(db *Database, ids []uint32) cluster.ShardFunc {
	return func(ctx context.Context, q []float32, k, ef int, dst []hnsw.Neighbor) ([]hnsw.Neighbor, error) {
		var out []hnsw.Neighbor
		var err error
		switch routeFrom(ctx) {
		case RouteTiered:
			out, _, err = db.TieredSearchCtxInto(ctx, q, k, tieredBudgetFrom(ctx), dst)
		case RouteExact:
			out, _, err = db.ExactSearchCtx(ctx, q, k)
		default:
			out, err = db.SearchCtxInto(ctx, q, k, ef, dst)
		}
		if err != nil {
			var ce *CancelError
			if errors.As(err, &ce) && ce.Partial {
				remapToGlobal(out, ids)
				return out, err
			}
			return nil, err
		}
		remapToGlobal(out, ids)
		return out, nil
	}
}

// remapToGlobal rewrites shard-local row ids to global vector ids in place
// and restores the canonical order. The list stays sorted by distance, so
// only equal-distance runs can be out of order after remapping — insertion
// sort is linear on that shape and allocation-free.
func remapToGlobal(nn []Neighbor, ids []uint32) {
	for i := range nn {
		nn[i].ID = ids[nn[i].ID]
	}
	for i := 1; i < len(nn); i++ {
		for j := i; j > 0 && nn[j].Less(nn[j-1]); j-- {
			nn[j], nn[j-1] = nn[j-1], nn[j]
		}
	}
}

// Shards returns the number of (non-empty) shards.
func (c *Cluster) Shards() int { return len(c.shards) }

// Len returns the total number of indexed vectors across all shards.
func (c *Cluster) Len() int { return c.total }

// SearchCtx searches the cluster with the default beam width (2k, min 32),
// degrading to a partial merged answer when shards misbehave.
func (c *Cluster) SearchCtx(ctx context.Context, q []float32, k int) (ClusterResult, error) {
	ef := 2 * k
	if ef < 32 {
		ef = 32
	}
	return c.SearchEfCtx(ctx, q, k, ef)
}

// SearchEfCtx is SearchCtx with an explicit beam width.
func (c *Cluster) SearchEfCtx(ctx context.Context, q []float32, k, ef int) (ClusterResult, error) {
	return c.SearchEfCtxInto(ctx, q, k, ef, nil)
}

// SearchEfCtxInto is SearchEfCtx appending the merged results into dst[:0].
//
// The error is nil for both healthy and degraded answers — degradation is
// reported in the result (Partial, Faults), because a partial top-k is
// still an answer. It is non-nil only when the query's own context fired
// (the usual *CancelError contract, with any best-effort merge in the
// result) or no shard produced anything at all.
func (c *Cluster) SearchEfCtxInto(ctx context.Context, q []float32, k, ef int, dst []Neighbor) (ClusterResult, error) {
	if err := c.shards[0].validateQuery(q, k, ef); err != nil {
		return ClusterResult{}, err
	}
	res, err := c.coord.SearchInto(ctx, q, k, ef, dst)
	out := ClusterResult{Neighbors: res.Neighbors, Partial: res.Partial, Hedged: res.Hedged}
	if len(res.Errors) > 0 {
		out.Faults = make([]ShardFault, len(res.Errors))
		for i, e := range res.Errors {
			out.Faults[i] = ShardFault{Shard: e.Shard, Kind: e.Kind.String(), Err: e.Err}
		}
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return out, &CancelError{Err: ErrDeadlineExceeded, Partial: len(out.Neighbors) > 0}
		case errors.Is(err, context.Canceled):
			return out, &CancelError{Err: ErrCanceled, Partial: len(out.Neighbors) > 0}
		}
		return out, err
	}
	return out, nil
}

// SearchRouted is SearchEfCtx with a query-path mode (see
// Database.SearchRouted). RouteAuto is resolved ONCE, on the first shard's
// router — whose EWMA and breaker state see this cluster's traffic — and
// every shard then executes the same concrete path, so the scatter-gather
// merge stays coherent (mixing routes across shards would merge answers of
// different quality classes). The chosen route rides the context via
// WithRoute; the coordinator, hedging, and partial-merge semantics are
// untouched.
func (c *Cluster) SearchRouted(ctx context.Context, q []float32, k, ef int, mode Route) (ClusterResult, Route, error) {
	lead := c.shards[0]
	route := mode
	if route == RouteAuto {
		route = lead.router.Decide(slackOf(ctx), lead.sys.Store != nil)
	}
	if route == RouteTiered && lead.sys.Store == nil {
		route = RouteExact
	}
	ctx = WithRoute(ctx, route)
	if route == RouteTiered && lead.adaptive() && tieredBudgetFrom(ctx) == 0 {
		// Resolve the recall-target calibration once, on the lead shard —
		// the same lead-resolution rule as routing: shard tuners calibrate
		// independently, and a merge over mixed budgets would blend answer
		// quality classes. An explicit budget already on the context (a
		// per-request recall target from the serve layer) wins.
		ctx = WithTieredBudget(ctx, lead.tuner.Budget())
	}
	res, err := c.SearchEfCtxInto(ctx, q, k, ef, nil)
	lead.router.Record(route)
	return res, route, err
}

// ExactSearchCtx scatter-gathers the exact (linear-scan) search: each shard
// scans its partition and the exact per-shard top-k merge IS the exact
// global top-k at any k — no approximation caveat. Unlike SearchEfCtx this
// auxiliary path fans out synchronously and fails fast on any shard error;
// it does not hedge or degrade.
func (c *Cluster) ExactSearchCtx(ctx context.Context, q []float32, k int) ([]Neighbor, int, error) {
	lists := make([][]Neighbor, len(c.shards))
	lines := make([]int, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for s := range c.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			nn, ln, err := c.shards[s].ExactSearchCtx(ctx, q, k)
			if err != nil {
				errs[s] = err
				return
			}
			remapToGlobal(nn, c.ids[s])
			lists[s], lines[s] = nn, ln
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("ansmet: exact search on shard %d: %w", s, err)
		}
	}
	totalLines := 0
	for _, ln := range lines {
		totalLines += ln
	}
	return hnsw.MergeTopK(nil, lists, k), totalLines, nil
}

// SearchFiltered scatter-gathers the attribute-filtered search; the
// predicate receives GLOBAL vector ids. Like ExactSearchCtx this auxiliary
// path fails fast instead of degrading.
func (c *Cluster) SearchFiltered(q []float32, k int, filter func(uint32) bool) ([]Neighbor, error) {
	lists := make([][]Neighbor, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for s := range c.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ids := c.ids[s]
			local := func(id uint32) bool { return filter(ids[id]) }
			nn, err := c.shards[s].SearchFiltered(q, k, local)
			if err != nil {
				errs[s] = err
				return
			}
			remapToGlobal(nn, ids)
			lists[s] = nn
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ansmet: filtered search on shard %d: %w", s, err)
		}
	}
	return hnsw.MergeTopK(nil, lists, k), nil
}

// ClusterStats surfaces the cluster's health and degradation counters: the
// coordinator's fan-out/fault totals, each shard breaker's position, and
// the per-shard Database stats (the same ansmet.Stats an unsharded
// deployment reports).
type ClusterStats struct {
	Shards         int
	Vectors        int
	Partition      string
	DegradedShards int      // shards whose breaker is not closed
	BreakerStates  []string // per shard: closed / open / half-open

	// Coordinator lifetime totals.
	Queries      uint64
	ShardCalls   uint64
	Hedges       uint64
	HedgeWins    uint64
	Partials     uint64
	Timeouts     uint64
	Crashes      uint64
	BreakerSkips uint64
	Sheds        uint64
	BreakerTrips uint64
	Probes       uint64
	Reenables    uint64
	AllFailed    uint64

	// Shard holds each shard Database's own Stats.
	Shard []Stats
}

// PrecisionStats reports the lead shard's adaptive-precision calibration —
// the one SearchRouted resolves cluster-wide budgets from. Zero-valued
// (Enabled false) when the build options did not set a RecallTarget.
func (c *Cluster) PrecisionStats() PrecisionStats {
	return c.shards[0].PrecisionStats()
}

// Stats reports the cluster's health counters.
func (c *Cluster) Stats() ClusterStats {
	m := c.coord.Metrics().Snapshot()
	st := ClusterStats{
		Shards: len(c.shards), Vectors: c.total, Partition: c.opts.Partition.String(),
		DegradedShards: c.coord.DegradedShards(),
		Queries:        m.Queries, ShardCalls: m.ShardCalls,
		Hedges: m.Hedges, HedgeWins: m.HedgeWins,
		Partials: m.Partials, Timeouts: m.Timeouts, Crashes: m.Crashes,
		BreakerSkips: m.BreakerSkips, Sheds: m.Sheds, BreakerTrips: m.BreakerTrips,
		Probes: m.Probes, Reenables: m.Reenables, AllFailed: m.AllFailed,
	}
	for _, b := range c.coord.BreakerStates() {
		st.BreakerStates = append(st.BreakerStates, b.String())
	}
	for _, db := range c.shards {
		st.Shard = append(st.Shard, db.Stats())
	}
	return st
}
