package ansmet_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ansmet"
	"ansmet/internal/dataset"
	"ansmet/internal/wal"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p := dataset.ProfileByName("SPACEV")
	ds := dataset.Generate(p, 500, 6, 21)
	db, err := ansmet.New(ds.Vectors, ansmet.Options{
		Metric: p.Metric, Elem: p.Elem, EfConstruction: 60, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ansmet.Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d vectors, want %d", loaded.Len(), db.Len())
	}
	// Identical search results (same graph, same deterministic preprocessing).
	for _, q := range ds.Queries {
		a, err := db.SearchEf(q, 10, 50)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.SearchEf(q, 10, 50)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("results diverge after load: %+v vs %+v", a[j], b[j])
			}
		}
	}
	if db.Stats().PrefixBits != loaded.Stats().PrefixBits {
		t.Error("preprocessing differs after load")
	}
}

func TestLoadWithDesignOverride(t *testing.T) {
	p := dataset.ProfileByName("SIFT")
	ds := dataset.Generate(p, 300, 3, 23)
	db, err := ansmet.New(ds.Vectors, ansmet.Options{
		Metric: p.Metric, Elem: p.Elem, EfConstruction: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ansmet.Load(&buf, ansmet.UseDesign(ansmet.CPUBase))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().Design != ansmet.CPUBase {
		t.Errorf("design override ignored: %v", loaded.Stats().Design)
	}
	// Results still identical (designs are functionally equivalent).
	a, _ := db.SearchEf(ds.Queries[0], 5, 40)
	b, _ := loaded.SearchEf(ds.Queries[0], 5, 40)
	for j := range a {
		if a[j].ID != b[j].ID {
			t.Fatal("override changed results")
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := ansmet.Load(bytes.NewReader([]byte("not a database")), nil); err == nil {
		t.Error("garbage input should fail")
	}
}

// ---- WAL crash-point recovery ---------------------------------------------

// crashOpts build small and repair eagerly so the every-offset sweep stays
// fast while still crossing repair batch boundaries.
func crashOpts() ansmet.Options {
	return ansmet.Options{
		Metric: ansmet.L2, Elem: ansmet.Float32,
		EfConstruction: 20, Mutable: true, RepairEvery: 3,
	}
}

// TestWALCrashPointEveryOffset is the acceptance-criteria crash sweep: a
// journal is cut at EVERY byte offset (a crash can tear a write anywhere),
// and recovery from each prefix must (a) succeed, (b) replay exactly the
// records whose fsync had completed at the cut — wal.Scan is the oracle —
// and (c) be state-identical to a reference database that applied exactly
// those acknowledged ops. No acknowledged write is ever lost; no torn
// record is ever half-applied.
func TestWALCrashPointEveryOffset(t *testing.T) {
	vecs := makeVectors(64, 16, 0.7)
	ops := scriptOps(64, 16)
	dir := t.TempDir()

	full, err := ansmet.New(vecs, crashOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := full.AttachWAL(filepath.Join(dir, "full.wal")); err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		switch op.kind {
		case "add":
			_, err = full.Add(op.vec)
		case "delete":
			err = full.Delete(op.id)
		case "update":
			_, err = full.Update(op.id, op.vec)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "full.wal"))
	if err != nil {
		t.Fatal(err)
	}

	// References, memoized per acknowledged-op count: refs[m] applied
	// ops[:m] directly, no journal. Each journal record is one op.
	refs := make([]*ansmet.Database, len(ops)+1)
	reference := func(tb *testing.T, m int) *ansmet.Database {
		if refs[m] != nil {
			return refs[m]
		}
		db, err := ansmet.New(vecs, crashOpts())
		if err != nil {
			tb.Fatal(err)
		}
		for _, op := range ops[:m] {
			switch op.kind {
			case "add":
				_, err = db.Add(op.vec)
			case "delete":
				err = db.Delete(op.id)
			case "update":
				_, err = db.Update(op.id, op.vec)
			}
			if err != nil {
				tb.Fatal(err)
			}
		}
		refs[m] = db
		return db
	}
	queries := makeVectors(2, 16, 2.9)

	for cut := 0; cut <= len(data); cut++ {
		recs, _, _ := wal.Scan(data[:cut], 0) // the acknowledged prefix
		m := len(recs)

		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := ansmet.New(vecs, crashOpts())
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.AttachWAL(path); err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if got := rec.Stats().WALReplayed; got != uint64(m) {
			t.Fatalf("cut %d: replayed %d records, journal holds %d complete", cut, got, m)
		}
		ref := reference(t, m)
		if rec.Len() != ref.Len() || rec.Tombstones() != ref.Tombstones() {
			t.Fatalf("cut %d: Len/Tombstones %d/%d, want %d/%d",
				cut, rec.Len(), rec.Tombstones(), ref.Len(), ref.Tombstones())
		}
		for _, q := range queries {
			a, err := rec.SearchEf(q, 5, 24)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ref.SearchEf(q, 5, 24)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("cut %d: recovered results diverge from %d-op reference:\n%v\n%v", cut, m, a, b)
			}
		}
		// The truncated-and-recovered journal must accept new writes: the
		// torn tail was discarded, sequence numbers continue from m.
		if _, err := rec.Add(vecs[0]); err != nil {
			t.Fatalf("cut %d: post-recovery add: %v", cut, err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzWALReplay feeds arbitrary bytes to the journal replay path: recovery
// must never panic, and whenever it succeeds the database must be coherent
// (searches return no tombstoned ids, new writes are accepted).
func FuzzWALReplay(f *testing.F) {
	vecs := makeVectors(32, 8, 0.9)
	ops := scriptOps(32, 8)

	// Seed with a genuine journal plus classic corruptions of it.
	seedDir := f.TempDir()
	db, err := ansmet.New(vecs, crashOpts())
	if err != nil {
		f.Fatal(err)
	}
	if err := db.AttachWAL(filepath.Join(seedDir, "seed.wal")); err != nil {
		f.Fatal(err)
	}
	for _, op := range ops {
		switch op.kind {
		case "add":
			_, err = db.Add(op.vec)
		case "delete":
			err = db.Delete(op.id)
		case "update":
			_, err = db.Update(op.id, op.vec)
		}
		if err != nil {
			f.Fatal(err)
		}
	}
	db.Close()
	valid, err := os.ReadFile(filepath.Join(seedDir, "seed.wal"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:11]) // bare header
	f.Add([]byte{})
	f.Add([]byte("not a journal at all, definitely"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	reseq := append([]byte(nil), valid...)
	reseq[11+1] ^= 0xff // first record's sequence number
	f.Add(reseq)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := ansmet.New(vecs, crashOpts())
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AttachWAL(path); err != nil {
			return // rejected: fine, as long as it did not panic
		}
		defer db.Close()
		res, err := db.SearchEf(vecs[3], 5, 24)
		if err != nil {
			t.Fatalf("search after replay: %v", err)
		}
		for _, n := range res {
			if db.Deleted(n.ID) {
				t.Fatalf("replayed database returned tombstoned id %d", n.ID)
			}
		}
		if _, err := db.Add(vecs[1]); err != nil {
			t.Fatalf("add after replay: %v", err)
		}
	})
}
