package ansmet_test

import (
	"bytes"
	"testing"

	"ansmet"
	"ansmet/internal/dataset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p := dataset.ProfileByName("SPACEV")
	ds := dataset.Generate(p, 500, 6, 21)
	db, err := ansmet.New(ds.Vectors, ansmet.Options{
		Metric: p.Metric, Elem: p.Elem, EfConstruction: 60, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ansmet.Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d vectors, want %d", loaded.Len(), db.Len())
	}
	// Identical search results (same graph, same deterministic preprocessing).
	for _, q := range ds.Queries {
		a, err := db.SearchEf(q, 10, 50)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.SearchEf(q, 10, 50)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("results diverge after load: %+v vs %+v", a[j], b[j])
			}
		}
	}
	if db.Stats().PrefixBits != loaded.Stats().PrefixBits {
		t.Error("preprocessing differs after load")
	}
}

func TestLoadWithDesignOverride(t *testing.T) {
	p := dataset.ProfileByName("SIFT")
	ds := dataset.Generate(p, 300, 3, 23)
	db, err := ansmet.New(ds.Vectors, ansmet.Options{
		Metric: p.Metric, Elem: p.Elem, EfConstruction: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ansmet.Load(&buf, ansmet.UseDesign(ansmet.CPUBase))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().Design != ansmet.CPUBase {
		t.Errorf("design override ignored: %v", loaded.Stats().Design)
	}
	// Results still identical (designs are functionally equivalent).
	a, _ := db.SearchEf(ds.Queries[0], 5, 40)
	b, _ := loaded.SearchEf(ds.Queries[0], 5, 40)
	for j := range a {
		if a[j].ID != b[j].ID {
			t.Fatal("override changed results")
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := ansmet.Load(bytes.NewReader([]byte("not a database")), nil); err == nil {
		t.Error("garbage input should fail")
	}
}
