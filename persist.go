package ansmet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"ansmet/internal/core"
	"ansmet/internal/hnsw"
	"ansmet/internal/vecmath"
)

// snapshotMagic versions the serialization format. v3 added the CRC32C
// integrity footer; v1/v2 files (pre-hardening, no checksum) are rejected.
const snapshotMagic = "ansmet-db-v3"

// snapshotHeader is a raw byte prefix written before the gob stream, so
// Load can reject non-ansmet files before handing attacker-controlled
// bytes to the gob decoder.
var snapshotHeader = []byte("ANSMETDB3\n")

// snapshotFooterMagic opens the fixed-size trailer appended after the gob
// stream: footer magic (10 bytes) + uint64 LE payload length + uint32 LE
// CRC32C (Castagnoli) over the payload (header + gob stream). A torn write
// truncates the footer or leaves a length/CRC that no longer matches, so
// Load detects it before decoding a single gob byte.
var snapshotFooterMagic = []byte("ANSMETCRC\n")

const snapshotFooterLen = 10 + 8 + 4

// Typed snapshot-corruption errors, matched with errors.Is. Load
// distinguishes the three ways a file can be bad so operators can tell a
// torn write (truncated: retry from the previous snapshot) from bit rot
// (checksum: the media lied) from a file that was never a snapshot at all.
var (
	// ErrSnapshotBadMagic reports a file that is not an ansmet snapshot or
	// uses an unsupported format version.
	ErrSnapshotBadMagic = errors.New("ansmet: not an ansmet-db-v3 snapshot")
	// ErrSnapshotTruncated reports a snapshot cut short — the integrity
	// footer is missing or its recorded length disagrees with the data.
	ErrSnapshotTruncated = errors.New("ansmet: truncated snapshot")
	// ErrSnapshotChecksum reports payload bytes that fail the CRC32C check.
	ErrSnapshotChecksum = errors.New("ansmet: snapshot checksum mismatch")
)

// castagnoli is the CRC32C table (same polynomial iSCSI and ext4 use;
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// dbSnapshot is the gob-encoded on-disk form of a Database: the quantized
// vectors and the HNSW graph. The design-specific preprocessing (layout
// optimization, prefix elimination, partitioning) is deterministic given
// the options and is re-run on load — it is orders of magnitude cheaper
// than graph construction (paper Table 4).
type dbSnapshot struct {
	Magic  string
	Metric Metric
	Elem   ElemType
	Design Design
	Seed   uint64

	Vectors [][]float32
	Graph   *hnsw.Snapshot
}

// crcWriter tees writes into a CRC32C accumulator and counts bytes.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
	n   uint64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	cw.n += uint64(n)
	return n, err
}

// Save serializes the database (vectors + index graph + options) to w:
// raw header, gob stream, then the CRC32C integrity footer Load verifies
// before decoding. Save performs no atomicity of its own — use SaveFile
// for crash-safe persistence to a path.
func (db *Database) Save(w io.Writer) error {
	cw := &crcWriter{w: w, crc: crc32.New(castagnoli)}
	if _, err := cw.Write(snapshotHeader); err != nil {
		return fmt.Errorf("ansmet: writing snapshot header: %w", err)
	}
	snap := dbSnapshot{
		Magic:   snapshotMagic,
		Metric:  db.opts.Metric,
		Elem:    db.opts.Elem,
		Design:  *db.opts.Design,
		Seed:    db.opts.Seed,
		Vectors: db.vectors,
		Graph:   db.sys.Index.Snapshot(),
	}
	if err := gob.NewEncoder(cw).Encode(&snap); err != nil {
		return fmt.Errorf("ansmet: encoding snapshot: %w", err)
	}
	footer := make([]byte, snapshotFooterLen)
	copy(footer, snapshotFooterMagic)
	binary.LittleEndian.PutUint64(footer[10:], cw.n)
	binary.LittleEndian.PutUint32(footer[18:], cw.crc.Sum32())
	if _, err := w.Write(footer); err != nil {
		return fmt.Errorf("ansmet: writing snapshot footer: %w", err)
	}
	return nil
}

// saveFileTestHook, when non-nil, runs after the temp file is durably
// written but before the rename; tests use it to simulate a crash at the
// most dangerous moment and assert the destination is untouched.
var saveFileTestHook func(tmpPath string) error

// SaveFile persists the database to path crash-safely: the snapshot is
// written to a temporary file in the same directory, fsynced, and only
// then atomically renamed over path. A crash at any point leaves either
// the complete old file or the complete new file — never a torn mix — and
// on error the temporary file is removed.
func (db *Database) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ansmet-snap-*")
	if err != nil {
		return fmt.Errorf("ansmet: creating temp snapshot: %w", err)
	}
	tmpPath := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
		}
	}()
	if err = db.Save(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ansmet: syncing temp snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ansmet: closing temp snapshot: %w", err)
	}
	if saveFileTestHook != nil {
		if err = saveFileTestHook(tmpPath); err != nil {
			return err
		}
	}
	if err = os.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("ansmet: renaming snapshot into place: %w", err)
	}
	// Make the rename itself durable (best-effort: some filesystems don't
	// support fsync on directories).
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reconstructs a database previously written with SaveFile (or
// Save to a file). design may override the persisted Design.
func LoadFile(path string, design *Design) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ansmet: opening snapshot: %w", err)
	}
	defer f.Close()
	return Load(f, design)
}

// decodeSnapshot gob-decodes with a recover guard: the gob decoder (and
// anything downstream of a hostile payload) must surface as an error, never
// a panic.
func decodeSnapshot(r io.Reader) (snap dbSnapshot, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("ansmet: malformed snapshot: %v", p)
		}
	}()
	err = gob.NewDecoder(r).Decode(&snap)
	return snap, err
}

// validateSnapshot bounds-checks every decoded field before the snapshot is
// acted on: a corrupt or crafted file must fail here, not crash deep inside
// preprocessing.
func validateSnapshot(snap *dbSnapshot) error {
	if snap.Magic != snapshotMagic {
		return fmt.Errorf("%w: unsupported snapshot version %q (want %q)",
			ErrSnapshotBadMagic, snap.Magic, snapshotMagic)
	}
	if snap.Metric < vecmath.L2 || snap.Metric > vecmath.Cosine {
		return fmt.Errorf("ansmet: snapshot has invalid metric %d", int(snap.Metric))
	}
	if snap.Elem < vecmath.Uint8 || snap.Elem > vecmath.Float32 {
		return fmt.Errorf("ansmet: snapshot has invalid element type %d", int(snap.Elem))
	}
	valid := false
	for _, d := range core.AllDesigns {
		if snap.Design == d {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("ansmet: snapshot has invalid design %d", int(snap.Design))
	}
	if len(snap.Vectors) == 0 {
		return fmt.Errorf("ansmet: snapshot has no vectors")
	}
	dim := len(snap.Vectors[0])
	if dim == 0 {
		return fmt.Errorf("ansmet: snapshot has zero-dimension vectors")
	}
	for i, v := range snap.Vectors {
		if len(v) != dim {
			return fmt.Errorf("ansmet: snapshot vector %d has dim %d, want %d", i, len(v), dim)
		}
		for d, x := range v {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return fmt.Errorf("ansmet: snapshot vector %d component %d is %v", i, d, x)
			}
		}
	}
	if snap.Graph == nil {
		return fmt.Errorf("ansmet: snapshot has no index graph")
	}
	return nil
}

// verifySnapshotBytes checks the raw header and integrity footer of a
// complete snapshot image and returns the gob payload (the bytes between
// header and footer). Every failure is one of the typed corruption errors.
func verifySnapshotBytes(data []byte) ([]byte, error) {
	if len(data) < len(snapshotHeader) {
		if bytes.HasPrefix(snapshotHeader, data) {
			// A prefix of a valid header: torn at the very start.
			return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrSnapshotTruncated, len(data))
		}
		return nil, fmt.Errorf("%w (short header)", ErrSnapshotBadMagic)
	}
	if !bytes.Equal(data[:len(snapshotHeader)], snapshotHeader) {
		return nil, fmt.Errorf("%w (bad header)", ErrSnapshotBadMagic)
	}
	if len(data) < len(snapshotHeader)+snapshotFooterLen {
		return nil, fmt.Errorf("%w: no integrity footer (torn write?)", ErrSnapshotTruncated)
	}
	footer := data[len(data)-snapshotFooterLen:]
	if !bytes.Equal(footer[:len(snapshotFooterMagic)], snapshotFooterMagic) {
		return nil, fmt.Errorf("%w: integrity footer missing or damaged (torn write?)", ErrSnapshotTruncated)
	}
	payload := data[:len(data)-snapshotFooterLen]
	wantLen := binary.LittleEndian.Uint64(footer[10:])
	if wantLen != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: footer records %d payload bytes, file has %d",
			ErrSnapshotTruncated, wantLen, len(payload))
	}
	wantCRC := binary.LittleEndian.Uint32(footer[18:])
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("%w: crc32c %08x, footer says %08x", ErrSnapshotChecksum, got, wantCRC)
	}
	return payload[len(snapshotHeader):], nil
}

// Load reconstructs a database previously written with Save, re-running the
// (cheap, deterministic) design preprocessing but not graph construction.
// design may override the persisted Design; other fields are restored.
//
// Load is hardened against corrupt or hostile input: the raw header and
// format version are checked first, the CRC32C footer is verified over the
// whole payload BEFORE any gob byte is decoded (so a torn write or flipped
// bit is a typed error — ErrSnapshotTruncated, ErrSnapshotChecksum,
// ErrSnapshotBadMagic — and can never yield a silently wrong database),
// every decoded field is bounds-checked, and graph reconstruction validates
// the topology. Malformed files return errors, never panic (FuzzLoad and
// FuzzLoadSnapshot assert this).
func Load(r io.Reader, design *Design) (db *Database, err error) {
	defer func() {
		if p := recover(); p != nil {
			db, err = nil, fmt.Errorf("ansmet: malformed snapshot: %v", p)
		}
	}()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ansmet: reading snapshot: %w", err)
	}
	payload, err := verifySnapshotBytes(data)
	if err != nil {
		return nil, err
	}
	snap, err := decodeSnapshot(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("ansmet: decoding snapshot: %w", err)
	}
	if err := validateSnapshot(&snap); err != nil {
		return nil, err
	}
	ix, err := hnsw.FromSnapshot(snap.Vectors, snap.Graph)
	if err != nil {
		return nil, err
	}
	d := snap.Design
	if design != nil {
		d = *design
	}
	cfg := core.DefaultSystemConfig(d)
	cfg.Seed = snap.Seed
	sys, err := core.NewSystem(snap.Vectors, snap.Elem, snap.Metric, ix, cfg)
	if err != nil {
		return nil, err
	}
	opts := Options{
		Metric: snap.Metric, Elem: snap.Elem,
		Design: UseDesign(d), Seed: snap.Seed,
	}
	return &Database{opts: opts, vectors: snap.Vectors, sys: sys}, nil
}
