package ansmet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"ansmet/internal/core"
	"ansmet/internal/hnsw"
	"ansmet/internal/vecmath"
)

// snapshotMagic versions the serialization format. v3 added the CRC32C
// integrity footer; v1/v2 files (pre-hardening, no checksum) are rejected.
const snapshotMagic = "ansmet-db-v3"

// snapshotHeader is a raw byte prefix written before the gob stream, so
// Load can reject non-ansmet files before handing attacker-controlled
// bytes to the gob decoder.
var snapshotHeader = []byte("ANSMETDB3\n")

// snapshotFooterMagic opens the fixed-size trailer appended after the gob
// stream: footer magic (10 bytes) + uint64 LE payload length + uint32 LE
// CRC32C (Castagnoli) over the payload (header + gob stream). A torn write
// truncates the footer or leaves a length/CRC that no longer matches, so
// Load detects it before decoding a single gob byte.
var snapshotFooterMagic = []byte("ANSMETCRC\n")

const snapshotFooterLen = 10 + 8 + 4

// Typed snapshot-corruption errors, matched with errors.Is. Load
// distinguishes the three ways a file can be bad so operators can tell a
// torn write (truncated: retry from the previous snapshot) from bit rot
// (checksum: the media lied) from a file that was never a snapshot at all.
var (
	// ErrSnapshotBadMagic reports a file that is not an ansmet snapshot or
	// uses an unsupported format version.
	ErrSnapshotBadMagic = errors.New("ansmet: not an ansmet-db-v3 snapshot")
	// ErrSnapshotTruncated reports a snapshot cut short — the integrity
	// footer is missing or its recorded length disagrees with the data.
	ErrSnapshotTruncated = errors.New("ansmet: truncated snapshot")
	// ErrSnapshotChecksum reports payload bytes that fail the CRC32C check.
	ErrSnapshotChecksum = errors.New("ansmet: snapshot checksum mismatch")
)

// castagnoli is the CRC32C table (same polynomial iSCSI and ext4 use;
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// dbSnapshot is the gob-encoded on-disk form of a Database: the quantized
// vectors and the HNSW graph. The design-specific preprocessing (layout
// optimization, prefix elimination, partitioning) is deterministic given
// the options and is re-run on load — it is orders of magnitude cheaper
// than graph construction (paper Table 4).
type dbSnapshot struct {
	Magic  string
	Metric Metric
	Elem   ElemType
	Design Design
	Seed   uint64

	Vectors [][]float32
	Graph   *hnsw.Snapshot

	// Live-mutation state (zero values on immutable databases; gob decodes
	// pre-mutation snapshots to exactly those zero values, so old files
	// keep loading). Tombs is the deletion bitmap, Pending the tombstones
	// not yet folded into the graph by the deferred repair — restored so a
	// loaded database's repair batches line up with a never-snapshotted
	// one's — and WALSeq the journal compaction point: records with seq <=
	// WALSeq are folded into this snapshot and skipped at replay.
	Live    bool
	Tombs   []uint32
	Pending []uint32
	WALSeq  uint64
	// RepairEvery preserves the deferred-repair batching knob: replaying the
	// journal with a different threshold than the database that wrote it
	// would repair on different op boundaries and recover a different (if
	// equally valid) graph, breaking replay determinism.
	RepairEvery int
}

// crcWriter tees writes into a CRC32C accumulator and counts bytes.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
	n   uint64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	cw.n += uint64(n)
	return n, err
}

// Save serializes the database (vectors + index graph + options + live
// mutation state) to w: raw header, gob stream, then the CRC32C integrity
// footer Load verifies before decoding. Save performs no atomicity of its
// own — use SaveFile for crash-safe persistence to a path. On a mutable
// database Save takes the writer lock, so in-flight mutations finish and
// the snapshot is consistent; it does NOT compact an attached journal
// (only SaveFile holds the lock across both steps).
func (db *Database) Save(w io.Writer) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.saveLocked(w)
}

// saveLocked is Save's body; callers hold db.mu (a no-op lock on an
// immutable database).
func (db *Database) saveLocked(w io.Writer) error {
	cw := &crcWriter{w: w, crc: crc32.New(castagnoli)}
	if _, err := cw.Write(snapshotHeader); err != nil {
		return fmt.Errorf("ansmet: writing snapshot header: %w", err)
	}
	snap := dbSnapshot{
		Magic:   snapshotMagic,
		Metric:  db.opts.Metric,
		Elem:    db.opts.Elem,
		Design:  *db.opts.Design,
		Seed:    db.opts.Seed,
		Vectors: db.vectors,
		Graph:   db.sys.Index.Snapshot(),
	}
	if db.mutable {
		snap.Live = true
		snap.Tombs = db.sys.Tomb.IDs()
		snap.Pending = db.pending
		if db.journal != nil {
			snap.WALSeq = db.journal.LastSeq()
		}
		snap.RepairEvery = db.opts.RepairEvery
	}
	if err := gob.NewEncoder(cw).Encode(&snap); err != nil {
		return fmt.Errorf("ansmet: encoding snapshot: %w", err)
	}
	footer := make([]byte, snapshotFooterLen)
	copy(footer, snapshotFooterMagic)
	binary.LittleEndian.PutUint64(footer[10:], cw.n)
	binary.LittleEndian.PutUint32(footer[18:], cw.crc.Sum32())
	if _, err := w.Write(footer); err != nil {
		return fmt.Errorf("ansmet: writing snapshot footer: %w", err)
	}
	return nil
}

// saveFileTestHook, when non-nil, runs after the temp file is durably
// written but before the rename; tests use it to simulate a crash at the
// most dangerous moment and assert the destination is untouched.
var saveFileTestHook func(tmpPath string) error

// writeFileAtomic persists whatever write produces to path crash-safely:
// the bytes go to a temporary file in the same directory, are fsynced, and
// only then atomically renamed over path. A crash at any point leaves
// either the complete old file or the complete new file — never a torn
// mix — and on error the temporary file is removed. Shared by the
// Database snapshot, the per-shard cluster snapshots, and the cluster
// manifest.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ansmet-snap-*")
	if err != nil {
		return fmt.Errorf("ansmet: creating temp snapshot: %w", err)
	}
	tmpPath := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ansmet: syncing temp snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ansmet: closing temp snapshot: %w", err)
	}
	if saveFileTestHook != nil {
		if err = saveFileTestHook(tmpPath); err != nil {
			return err
		}
	}
	if err = os.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("ansmet: renaming snapshot into place: %w", err)
	}
	// Make the rename itself durable (best-effort: some filesystems don't
	// support fsync on directories).
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// SaveFile persists the database to path crash-safely via writeFileAtomic.
// On a mutable database with an attached journal, SaveFile is the
// compaction commit point: the writer lock is held across snapshot write
// AND journal truncation, so no acknowledged mutation can land between
// them, and a crash anywhere in the sequence leaves either the old
// snapshot plus a journal that replays over it, or the new snapshot plus
// a journal whose folded records are skipped by their sequence numbers.
func (db *Database) SaveFile(path string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := writeFileAtomic(path, db.saveLocked); err != nil {
		return err
	}
	if db.mutable && db.journal != nil && !db.closed {
		if err := db.journal.Reset(); err != nil {
			return fmt.Errorf("ansmet: compacting journal: %w", err)
		}
	}
	return nil
}

// WALName returns the journal path paired with a snapshot path — the file
// LoadFile opens (creating it if absent) when the snapshot is live.
func WALName(snapshotPath string) string { return snapshotPath + ".wal" }

// LoadFile reconstructs a database previously written with SaveFile (or
// Save to a file). design may override the persisted Design. When the
// snapshot is live (Options.Mutable was set), the paired journal at
// WALName(path) is opened — created empty if absent — its acknowledged
// records are replayed, any torn tail is truncated, and the journal stays
// attached for subsequent mutations; call Close to release it.
func LoadFile(path string, design *Design) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ansmet: opening snapshot: %w", err)
	}
	db, err := Load(f, design)
	f.Close()
	if err != nil {
		return nil, err
	}
	if db.Mutable() {
		if err := db.AttachWAL(WALName(path)); err != nil {
			return nil, fmt.Errorf("ansmet: recovering journal: %w", err)
		}
	}
	return db, nil
}

// decodeSnapshot gob-decodes with a recover guard: the gob decoder (and
// anything downstream of a hostile payload) must surface as an error, never
// a panic.
func decodeSnapshot(r io.Reader) (snap dbSnapshot, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("ansmet: malformed snapshot: %v", p)
		}
	}()
	err = gob.NewDecoder(r).Decode(&snap)
	return snap, err
}

// validateSnapshot bounds-checks every decoded field before the snapshot is
// acted on: a corrupt or crafted file must fail here, not crash deep inside
// preprocessing.
func validateSnapshot(snap *dbSnapshot) error {
	if snap.Magic != snapshotMagic {
		return fmt.Errorf("%w: unsupported snapshot version %q (want %q)",
			ErrSnapshotBadMagic, snap.Magic, snapshotMagic)
	}
	if snap.Metric < vecmath.L2 || snap.Metric > vecmath.Cosine {
		return fmt.Errorf("ansmet: snapshot has invalid metric %d", int(snap.Metric))
	}
	if snap.Elem < vecmath.Uint8 || snap.Elem > vecmath.Float32 {
		return fmt.Errorf("ansmet: snapshot has invalid element type %d", int(snap.Elem))
	}
	valid := false
	for _, d := range core.AllDesigns {
		if snap.Design == d {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("ansmet: snapshot has invalid design %d", int(snap.Design))
	}
	if len(snap.Vectors) == 0 {
		return fmt.Errorf("ansmet: snapshot has no vectors")
	}
	dim := len(snap.Vectors[0])
	if dim == 0 {
		return fmt.Errorf("ansmet: snapshot has zero-dimension vectors")
	}
	for i, v := range snap.Vectors {
		if len(v) != dim {
			return fmt.Errorf("ansmet: snapshot vector %d has dim %d, want %d", i, len(v), dim)
		}
		for d, x := range v {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return fmt.Errorf("ansmet: snapshot vector %d component %d is %v", i, d, x)
			}
		}
	}
	if snap.Graph == nil {
		return fmt.Errorf("ansmet: snapshot has no index graph")
	}
	if !snap.Live && (len(snap.Tombs) > 0 || len(snap.Pending) > 0 || snap.WALSeq != 0 || snap.RepairEvery != 0) {
		return fmt.Errorf("ansmet: snapshot has mutation state but is not live")
	}
	seen := make(map[uint32]bool, len(snap.Tombs))
	for _, id := range snap.Tombs {
		if int(id) >= len(snap.Vectors) {
			return fmt.Errorf("ansmet: snapshot tombstones id %d beyond %d vectors", id, len(snap.Vectors))
		}
		if seen[id] {
			return fmt.Errorf("ansmet: snapshot tombstones id %d twice", id)
		}
		seen[id] = true
	}
	for _, id := range snap.Pending {
		if !seen[id] {
			return fmt.Errorf("ansmet: snapshot queues untombstoned id %d for repair", id)
		}
	}
	return nil
}

// verifySnapshotBytes checks the raw header and integrity footer of a
// complete snapshot image and returns the gob payload (the bytes between
// header and footer). Every failure is one of the typed corruption errors.
func verifySnapshotBytes(data []byte) ([]byte, error) {
	return verifyIntegrity(data, snapshotHeader)
}

// verifyIntegrity is verifySnapshotBytes generalized over the raw header,
// shared with the cluster manifest format.
func verifyIntegrity(data, header []byte) ([]byte, error) {
	if len(data) < len(header) {
		if bytes.HasPrefix(header, data) {
			// A prefix of a valid header: torn at the very start.
			return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrSnapshotTruncated, len(data))
		}
		return nil, fmt.Errorf("%w (short header)", ErrSnapshotBadMagic)
	}
	if !bytes.Equal(data[:len(header)], header) {
		return nil, fmt.Errorf("%w (bad header)", ErrSnapshotBadMagic)
	}
	if len(data) < len(header)+snapshotFooterLen {
		return nil, fmt.Errorf("%w: no integrity footer (torn write?)", ErrSnapshotTruncated)
	}
	footer := data[len(data)-snapshotFooterLen:]
	if !bytes.Equal(footer[:len(snapshotFooterMagic)], snapshotFooterMagic) {
		return nil, fmt.Errorf("%w: integrity footer missing or damaged (torn write?)", ErrSnapshotTruncated)
	}
	payload := data[:len(data)-snapshotFooterLen]
	wantLen := binary.LittleEndian.Uint64(footer[10:])
	if wantLen != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: footer records %d payload bytes, file has %d",
			ErrSnapshotTruncated, wantLen, len(payload))
	}
	wantCRC := binary.LittleEndian.Uint32(footer[18:])
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("%w: crc32c %08x, footer says %08x", ErrSnapshotChecksum, got, wantCRC)
	}
	return payload[len(header):], nil
}

// Load reconstructs a database previously written with Save, re-running the
// (cheap, deterministic) design preprocessing but not graph construction.
// design may override the persisted Design; other fields are restored.
//
// Load is hardened against corrupt or hostile input: the raw header and
// format version are checked first, the CRC32C footer is verified over the
// whole payload BEFORE any gob byte is decoded (so a torn write or flipped
// bit is a typed error — ErrSnapshotTruncated, ErrSnapshotChecksum,
// ErrSnapshotBadMagic — and can never yield a silently wrong database),
// every decoded field is bounds-checked, and graph reconstruction validates
// the topology. Malformed files return errors, never panic (FuzzLoad and
// FuzzLoadSnapshot assert this).
func Load(r io.Reader, design *Design) (db *Database, err error) {
	defer func() {
		if p := recover(); p != nil {
			db, err = nil, fmt.Errorf("ansmet: malformed snapshot: %v", p)
		}
	}()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ansmet: reading snapshot: %w", err)
	}
	payload, err := verifySnapshotBytes(data)
	if err != nil {
		return nil, err
	}
	snap, err := decodeSnapshot(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("ansmet: decoding snapshot: %w", err)
	}
	if err := validateSnapshot(&snap); err != nil {
		return nil, err
	}
	ix, err := hnsw.FromSnapshot(snap.Vectors, snap.Graph)
	if err != nil {
		return nil, err
	}
	d := snap.Design
	if design != nil {
		d = *design
	}
	cfg := core.DefaultSystemConfig(d)
	cfg.Seed = snap.Seed
	sys, err := core.NewSystem(snap.Vectors, snap.Elem, snap.Metric, ix, cfg)
	if err != nil {
		return nil, err
	}
	opts := Options{
		Metric: snap.Metric, Elem: snap.Elem,
		Design: UseDesign(d), Seed: snap.Seed,
	}
	db = &Database{opts: opts, vectors: snap.Vectors, sys: sys}
	if snap.Live {
		// Restore the live-mutation state. A design override without an
		// early-termination store cannot serve a live snapshot: the Base
		// scan paths have no tombstone filtering, so deleted ids would
		// resurface in results.
		db.opts.Mutable = true
		db.opts.RepairEvery = snap.RepairEvery
		if err := db.enableMutation(); err != nil {
			return nil, fmt.Errorf("ansmet: snapshot is live but %w", err)
		}
		for _, id := range snap.Tombs {
			db.sys.Tomb.Delete(id)
		}
		db.pending = append(db.pending, snap.Pending...)
		db.walBase = snap.WALSeq
	}
	return db, nil
}

// ---- Cluster persistence -------------------------------------------------
//
// A Cluster persists as a directory: one v3 Database snapshot per shard
// plus a manifest carrying the partition map. Every file is written with
// writeFileAtomic, and the manifest is written LAST — it is the commit
// point, so a crash mid-SaveDir leaves either the previous complete
// cluster or no loadable manifest, never a half-written mix that loads.

// clusterManifestMagic versions the manifest format.
const clusterManifestMagic = "ansmet-cluster-v1"

// clusterManifestHeader is the manifest's raw byte prefix (same role as
// snapshotHeader: reject non-manifest files before gob sees a byte).
var clusterManifestHeader = []byte("ANSMETCL1\n")

// ClusterManifestName is the manifest's file name inside a cluster
// directory.
const ClusterManifestName = "cluster.manifest"

// ShardSnapshotName returns shard s's snapshot file name inside a cluster
// directory.
func ShardSnapshotName(s int) string { return fmt.Sprintf("shard-%03d.snap", s) }

// clusterManifest is the gob-encoded partition map of a saved cluster.
type clusterManifest struct {
	Magic     string
	Partition int
	Total     int
	IDs       [][]uint32 // per shard: local row -> global id
}

// SaveDir persists the cluster to a directory: each shard's v3 snapshot,
// then the manifest as the atomic commit point.
func (c *Cluster) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ansmet: creating cluster dir: %w", err)
	}
	for s, db := range c.shards {
		if err := db.SaveFile(filepath.Join(dir, ShardSnapshotName(s))); err != nil {
			return fmt.Errorf("ansmet: saving shard %d: %w", s, err)
		}
	}
	man := clusterManifest{
		Magic:     clusterManifestMagic,
		Partition: int(c.opts.Partition),
		Total:     c.total,
		IDs:       c.ids,
	}
	return writeFileAtomic(filepath.Join(dir, ClusterManifestName), func(w io.Writer) error {
		cw := &crcWriter{w: w, crc: crc32.New(castagnoli)}
		if _, err := cw.Write(clusterManifestHeader); err != nil {
			return fmt.Errorf("ansmet: writing manifest header: %w", err)
		}
		if err := gob.NewEncoder(cw).Encode(&man); err != nil {
			return fmt.Errorf("ansmet: encoding manifest: %w", err)
		}
		footer := make([]byte, snapshotFooterLen)
		copy(footer, snapshotFooterMagic)
		binary.LittleEndian.PutUint64(footer[10:], cw.n)
		binary.LittleEndian.PutUint32(footer[18:], cw.crc.Sum32())
		if _, err := w.Write(footer); err != nil {
			return fmt.Errorf("ansmet: writing manifest footer: %w", err)
		}
		return nil
	})
}

// decodeClusterManifest gob-decodes with the same recover guard as
// decodeSnapshot: hostile bytes must error, never panic.
func decodeClusterManifest(payload []byte) (man clusterManifest, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("ansmet: malformed cluster manifest: %v", p)
		}
	}()
	err = gob.NewDecoder(bytes.NewReader(payload)).Decode(&man)
	return man, err
}

// validateClusterManifest bounds-checks the partition map: every global id
// appears exactly once across shards and every shard is non-empty.
func validateClusterManifest(man *clusterManifest) error {
	if man.Magic != clusterManifestMagic {
		return fmt.Errorf("%w: unsupported manifest version %q (want %q)",
			ErrSnapshotBadMagic, man.Magic, clusterManifestMagic)
	}
	if man.Partition < 0 || man.Partition >= len(partitionNames) {
		return fmt.Errorf("ansmet: manifest has invalid partition scheme %d", man.Partition)
	}
	if len(man.IDs) == 0 {
		return fmt.Errorf("ansmet: manifest has no shards")
	}
	if man.Total <= 0 {
		return fmt.Errorf("ansmet: manifest records %d vectors", man.Total)
	}
	seen := make([]bool, man.Total)
	count := 0
	for s, ids := range man.IDs {
		if len(ids) == 0 {
			return fmt.Errorf("ansmet: manifest shard %d is empty", s)
		}
		for _, id := range ids {
			if int(id) >= man.Total {
				return fmt.Errorf("ansmet: manifest shard %d has id %d out of range (total %d)", s, id, man.Total)
			}
			if seen[id] {
				return fmt.Errorf("ansmet: manifest assigns id %d to multiple shards", id)
			}
			seen[id] = true
			count++
		}
	}
	if count != man.Total {
		return fmt.Errorf("ansmet: manifest covers %d of %d ids", count, man.Total)
	}
	return nil
}

// LoadClusterDir restores a cluster saved with SaveDir. The manifest
// determines the shard layout and partition scheme; opts supplies the
// fan-out behaviour (timeouts, hedging, breakers) exactly as in
// NewCluster, with its Shards and Partition fields overridden by the
// manifest. The same corruption hardening as Load applies: CRC before gob,
// typed errors, bounds checks, no panics.
func LoadClusterDir(dir string, opts ClusterOptions) (*Cluster, error) {
	data, err := os.ReadFile(filepath.Join(dir, ClusterManifestName))
	if err != nil {
		return nil, fmt.Errorf("ansmet: reading cluster manifest: %w", err)
	}
	payload, err := verifyIntegrity(data, clusterManifestHeader)
	if err != nil {
		return nil, fmt.Errorf("ansmet: cluster manifest: %w", err)
	}
	man, err := decodeClusterManifest(payload)
	if err != nil {
		return nil, fmt.Errorf("ansmet: decoding cluster manifest: %w", err)
	}
	if err := validateClusterManifest(&man); err != nil {
		return nil, err
	}
	dbs := make([]*Database, len(man.IDs))
	for s := range man.IDs {
		db, err := LoadFile(filepath.Join(dir, ShardSnapshotName(s)), opts.Build.Design)
		if err != nil {
			return nil, fmt.Errorf("ansmet: loading shard %d: %w", s, err)
		}
		if db.Len() != len(man.IDs[s]) {
			return nil, fmt.Errorf("ansmet: shard %d snapshot holds %d vectors, manifest says %d",
				s, db.Len(), len(man.IDs[s]))
		}
		if s > 0 && db.sys.Dim != dbs[0].sys.Dim {
			return nil, fmt.Errorf("ansmet: shard %d dimension %d disagrees with shard 0 (%d)",
				s, db.sys.Dim, dbs[0].sys.Dim)
		}
		dbs[s] = db
	}
	opts.Shards = len(man.IDs)
	opts.Partition = PartitionScheme(man.Partition)
	return assembleCluster(dbs, man.IDs, man.Total, opts)
}
