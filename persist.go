package ansmet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"ansmet/internal/core"
	"ansmet/internal/hnsw"
	"ansmet/internal/vecmath"
)

// snapshotMagic versions the serialization format. v2 added the raw header
// below; v1 files (pre-hardening) are rejected.
const snapshotMagic = "ansmet-db-v2"

// snapshotHeader is a raw byte prefix written before the gob stream, so
// Load can reject non-ansmet files before handing attacker-controlled
// bytes to the gob decoder.
var snapshotHeader = []byte("ANSMETDB2\n")

// dbSnapshot is the gob-encoded on-disk form of a Database: the quantized
// vectors and the HNSW graph. The design-specific preprocessing (layout
// optimization, prefix elimination, partitioning) is deterministic given
// the options and is re-run on load — it is orders of magnitude cheaper
// than graph construction (paper Table 4).
type dbSnapshot struct {
	Magic  string
	Metric Metric
	Elem   ElemType
	Design Design
	Seed   uint64

	Vectors [][]float32
	Graph   *hnsw.Snapshot
}

// Save serializes the database (vectors + index graph + options) to w.
func (db *Database) Save(w io.Writer) error {
	if _, err := w.Write(snapshotHeader); err != nil {
		return fmt.Errorf("ansmet: writing snapshot header: %w", err)
	}
	snap := dbSnapshot{
		Magic:   snapshotMagic,
		Metric:  db.opts.Metric,
		Elem:    db.opts.Elem,
		Design:  *db.opts.Design,
		Seed:    db.opts.Seed,
		Vectors: db.vectors,
		Graph:   db.sys.Index.Snapshot(),
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// decodeSnapshot gob-decodes with a recover guard: the gob decoder (and
// anything downstream of a hostile payload) must surface as an error, never
// a panic.
func decodeSnapshot(r io.Reader) (snap dbSnapshot, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("ansmet: malformed snapshot: %v", p)
		}
	}()
	err = gob.NewDecoder(r).Decode(&snap)
	return snap, err
}

// validateSnapshot bounds-checks every decoded field before the snapshot is
// acted on: a corrupt or crafted file must fail here, not crash deep inside
// preprocessing.
func validateSnapshot(snap *dbSnapshot) error {
	if snap.Magic != snapshotMagic {
		return fmt.Errorf("ansmet: unsupported snapshot version %q (want %q)", snap.Magic, snapshotMagic)
	}
	if snap.Metric < vecmath.L2 || snap.Metric > vecmath.Cosine {
		return fmt.Errorf("ansmet: snapshot has invalid metric %d", int(snap.Metric))
	}
	if snap.Elem < vecmath.Uint8 || snap.Elem > vecmath.Float32 {
		return fmt.Errorf("ansmet: snapshot has invalid element type %d", int(snap.Elem))
	}
	valid := false
	for _, d := range core.AllDesigns {
		if snap.Design == d {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("ansmet: snapshot has invalid design %d", int(snap.Design))
	}
	if len(snap.Vectors) == 0 {
		return fmt.Errorf("ansmet: snapshot has no vectors")
	}
	dim := len(snap.Vectors[0])
	if dim == 0 {
		return fmt.Errorf("ansmet: snapshot has zero-dimension vectors")
	}
	for i, v := range snap.Vectors {
		if len(v) != dim {
			return fmt.Errorf("ansmet: snapshot vector %d has dim %d, want %d", i, len(v), dim)
		}
		for d, x := range v {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return fmt.Errorf("ansmet: snapshot vector %d component %d is %v", i, d, x)
			}
		}
	}
	if snap.Graph == nil {
		return fmt.Errorf("ansmet: snapshot has no index graph")
	}
	return nil
}

// Load reconstructs a database previously written with Save, re-running the
// (cheap, deterministic) design preprocessing but not graph construction.
// design may override the persisted Design; other fields are restored.
//
// Load is hardened against corrupt or hostile input: the raw header and
// format version are checked first, every decoded field is bounds-checked,
// and graph reconstruction validates the topology — malformed files return
// errors, never panic (FuzzLoad asserts this).
func Load(r io.Reader, design *Design) (db *Database, err error) {
	defer func() {
		if p := recover(); p != nil {
			db, err = nil, fmt.Errorf("ansmet: malformed snapshot: %v", p)
		}
	}()
	header := make([]byte, len(snapshotHeader))
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("ansmet: not an ansmet database (short header)")
	}
	if !bytes.Equal(header, snapshotHeader) {
		return nil, fmt.Errorf("ansmet: not an ansmet database (bad header)")
	}
	snap, err := decodeSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("ansmet: decoding snapshot: %w", err)
	}
	if err := validateSnapshot(&snap); err != nil {
		return nil, err
	}
	ix, err := hnsw.FromSnapshot(snap.Vectors, snap.Graph)
	if err != nil {
		return nil, err
	}
	d := snap.Design
	if design != nil {
		d = *design
	}
	cfg := core.DefaultSystemConfig(d)
	cfg.Seed = snap.Seed
	sys, err := core.NewSystem(snap.Vectors, snap.Elem, snap.Metric, ix, cfg)
	if err != nil {
		return nil, err
	}
	opts := Options{
		Metric: snap.Metric, Elem: snap.Elem,
		Design: UseDesign(d), Seed: snap.Seed,
	}
	return &Database{opts: opts, vectors: snap.Vectors, sys: sys}, nil
}
