package ansmet

import (
	"encoding/gob"
	"fmt"
	"io"

	"ansmet/internal/core"
	"ansmet/internal/hnsw"
)

// snapshotMagic versions the serialization format.
const snapshotMagic = "ansmet-db-v1"

// dbSnapshot is the gob-encoded on-disk form of a Database: the quantized
// vectors and the HNSW graph. The design-specific preprocessing (layout
// optimization, prefix elimination, partitioning) is deterministic given
// the options and is re-run on load — it is orders of magnitude cheaper
// than graph construction (paper Table 4).
type dbSnapshot struct {
	Magic  string
	Metric Metric
	Elem   ElemType
	Design Design
	Seed   uint64

	Vectors [][]float32
	Graph   *hnsw.Snapshot
}

// Save serializes the database (vectors + index graph + options) to w.
func (db *Database) Save(w io.Writer) error {
	snap := dbSnapshot{
		Magic:   snapshotMagic,
		Metric:  db.opts.Metric,
		Elem:    db.opts.Elem,
		Design:  *db.opts.Design,
		Seed:    db.opts.Seed,
		Vectors: db.vectors,
		Graph:   db.sys.Index.Snapshot(),
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reconstructs a database previously written with Save, re-running the
// (cheap, deterministic) design preprocessing but not graph construction.
// opts may override the persisted Design; other fields are restored.
func Load(r io.Reader, design *Design) (*Database, error) {
	var snap dbSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ansmet: decoding snapshot: %w", err)
	}
	if snap.Magic != snapshotMagic {
		return nil, fmt.Errorf("ansmet: not an ansmet database (magic %q)", snap.Magic)
	}
	ix, err := hnsw.FromSnapshot(snap.Vectors, snap.Graph)
	if err != nil {
		return nil, err
	}
	d := snap.Design
	if design != nil {
		d = *design
	}
	cfg := core.DefaultSystemConfig(d)
	cfg.Seed = snap.Seed
	sys, err := core.NewSystem(snap.Vectors, snap.Elem, snap.Metric, ix, cfg)
	if err != nil {
		return nil, err
	}
	opts := Options{
		Metric: snap.Metric, Elem: snap.Elem,
		Design: UseDesign(d), Seed: snap.Seed,
	}
	return &Database{opts: opts, vectors: snap.Vectors, sys: sys}, nil
}
