module ansmet

go 1.22
