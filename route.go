package ansmet

import (
	"context"
	"time"

	"ansmet/internal/core"
	"ansmet/internal/engine"
)

// This file is the public face of the tiered bound-first/exact-rerank
// pipeline and the deadline-aware query router (ROADMAP item 3): explicit
// tiered search entry points, per-query route selection between the NDP-sim
// beam path, the tiered pipeline and the CPU exact scan, and the context
// plumbing that carries an explicit route through the cluster coordinator.

// Route identifies a whole-query execution path; see internal/engine.
type Route = engine.Route

// Route values. RouteAuto lets the router pick per query from deadline
// slack, load, and NDP rank health; the rest force a path.
const (
	RouteAuto   = engine.RouteAuto
	RouteNDP    = engine.RouteNDP
	RouteTiered = engine.RouteTiered
	RouteExact  = engine.RouteExact
)

// ParseRoute maps a wire mode string ("", "auto", "ndp", "tiered",
// "exact") to a Route; the empty string means RouteNDP, the historical
// default path.
func ParseRoute(s string) (Route, error) { return engine.ParseRoute(s) }

// TieredStats reports one tiered query's work split (see internal/core).
type TieredStats = core.TieredStats

// RouterStats is a snapshot of the database router's counters.
type RouterStats = engine.RouterSnapshot

// RouterStats exposes the router's per-route counters and cost estimates.
func (db *Database) RouterStats() RouterStats { return db.router.Snapshot() }

// degradedRanks feeds the router's health signal: how many NDP ranks are
// currently degraded (breaker not closed). Zero when resilience is off.
func (db *Database) degradedRanks() int {
	if db.sys.Breakers == nil {
		return 0
	}
	return db.sys.Breakers.DegradedRanks()
}

// tieredBudget resolves the database's configured static cut budget
// (default 1: provably exact). Adaptive databases resolve through the
// recall-target tuner instead — see tieredOpts in precision.go.
func (db *Database) tieredBudget() float64 {
	if b := db.opts.TieredBudget; b > 0 && b <= 1 {
		return b
	}
	return 1
}

// tieredEngine returns the scratch's plain early-termination engine for the
// tiered pipeline, or nil when the design has no ET store (Base designs).
// Resilience-wrapped scratch engines don't expose the tiered scan, so those
// scratches lazily grow a dedicated plain engine (pooled with the scratch,
// so the steady state still allocates nothing).
func (db *Database) tieredEngine(s *searchScratch) *core.ETEngine {
	if db.sys.Store == nil {
		return nil
	}
	if et, ok := s.eng.(*core.ETEngine); ok {
		return et
	}
	if s.tiered == nil {
		s.tiered = db.sys.Store.NewETEngine(db.opts.Metric)
	}
	return s.tiered
}

// TieredSearch returns the k nearest neighbors via the two-stage
// bound-first/exact-rerank pipeline with the database's configured budget
// (Options.TieredBudget; default 1 — the provably exact cut). Stage 1
// orders the whole population by cheap partial-bit lower bounds without
// ever fully fetching a vector; stage 2 re-ranks candidates exactly in
// ascending-bound order until the adaptive cut proves (budget 1) or deems
// (budget < 1) the rest irrelevant. At budget 1 the results are identical
// to ExactSearch, at a fraction of its line traffic.
func (db *Database) TieredSearch(q []float32, k int) ([]Neighbor, TieredStats, error) {
	return db.TieredSearchInto(q, k, 0, nil)
}

// TieredSearchInto is TieredSearch with an explicit budget in (0, 1] (0
// uses the configured default) appending results into dst[:0]; with a
// reused dst the steady state allocates nothing (gated by
// TestTieredSteadyStateAllocs and BenchmarkTieredSearch in CI).
func (db *Database) TieredSearchInto(q []float32, k int, budget float64, dst []Neighbor) ([]Neighbor, TieredStats, error) {
	return db.tieredSearch(nil, q, k, budget, dst)
}

// TieredSearchCtxInto is TieredSearchInto with cooperative cancellation:
// both stages poll ctx.Done() at amortized checkpoints. A cancelled stage 1
// aborts empty (bounds alone are not answers); a cancelled stage 2 returns
// the exact top-k over the pool prefix re-ranked so far with a
// *CancelError whose Partial field reports usability.
func (db *Database) TieredSearchCtxInto(ctx context.Context, q []float32, k int, budget float64, dst []Neighbor) ([]Neighbor, TieredStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, TieredStats{}, cancelErr(ctx, false)
	}
	nn, st, err := db.tieredSearch(ctx.Done(), q, k, budget, dst)
	if err != nil {
		return nil, st, err
	}
	if st.Cancelled {
		return nn, st, cancelErr(ctx, len(nn) > 0)
	}
	return nn, st, nil
}

// tieredSearch is the shared core of the tiered entry points. On Base
// designs (no ET store) it degrades to the exact full scan — the whole
// population is the pool.
func (db *Database) tieredSearch(done <-chan struct{}, q []float32, k int, budget float64, dst []Neighbor) ([]Neighbor, TieredStats, error) {
	if err := db.validateQuery(q, k, k); err != nil {
		return nil, TieredStats{}, err
	}
	if db.sys.Store == nil {
		nn, lines, cancelled, err := db.exactSearch(done, q, k)
		if err != nil {
			return nil, TieredStats{}, err
		}
		return nn, TieredStats{Pool: db.Len(), RerankLines: lines, Cancelled: cancelled}, nil
	}
	s := db.getScratch()
	defer db.putScratch(s)
	qq := s.quantize(q, db.opts.Elem)
	et := db.tieredEngine(s)
	nn, st := et.TieredKNNInto(done, qq, k, db.tieredOpts(budget), dst)
	db.observeTiered(k, st)
	return nn, st, nil
}

// slackOf returns the context's remaining deadline budget, or
// engine.NoDeadline when it has none.
func slackOf(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return engine.NoDeadline
	}
	d := time.Until(dl)
	if d < 0 {
		d = 0
	}
	return d
}

// SearchRouted executes one query on the given route, returning the route
// actually taken. RouteAuto asks the router: degraded NDP ranks divert to
// the exact path (the only one not built on the NDP-modelled machinery),
// otherwise the highest-quality route whose recent cost fits the deadline
// slack wins — tiered (exact answers) given room, the cheap approximate
// beam path under pressure or load. Explicit routes are honored as-is,
// except that the tiered path on a Base design (no bound machinery)
// degrades to exact. Cancellation semantics match the underlying path's
// Ctx entry point. The un-cancelled NDP steady state with a reused dst
// allocates nothing (gated by BenchmarkRouterOverhead in CI).
func (db *Database) SearchRouted(ctx context.Context, q []float32, k, ef int, mode Route, dst []Neighbor) ([]Neighbor, Route, error) {
	if err := ctx.Err(); err != nil {
		return nil, mode, cancelErr(ctx, false)
	}
	route := mode
	if route == RouteAuto {
		route = db.router.Decide(slackOf(ctx), db.sys.Store != nil)
	}
	if route == RouteTiered && db.sys.Store == nil {
		route = RouteExact
	}
	db.router.Begin()
	defer db.router.End()
	start := time.Now()
	var out []Neighbor
	var err error
	switch route {
	case RouteTiered:
		out, _, err = db.TieredSearchCtxInto(ctx, q, k, 0, dst)
	case RouteExact:
		out, _, err = db.ExactSearchCtx(ctx, q, k)
	default:
		route = RouteNDP
		out, err = db.SearchCtxInto(ctx, q, k, ef, dst)
	}
	db.router.Record(route)
	db.router.Observe(route, time.Since(start))
	return out, route, err
}

// SearchManyRouted is SearchManyCtx with a query-path mode. RouteAuto
// resolves the route once for the whole batch (from the slack at entry);
// every worker then executes that path, so the batch is homogeneous.
func (db *Database) SearchManyRouted(ctx context.Context, queries [][]float32, k, ef, workers int, mode Route) ([][]Neighbor, Route, error) {
	if err := ctx.Err(); err != nil {
		return nil, mode, cancelErr(ctx, false)
	}
	route := mode
	if route == RouteAuto {
		route = db.router.Decide(slackOf(ctx), db.sys.Store != nil)
	}
	if route == RouteTiered && db.sys.Store == nil {
		route = RouteExact
	}
	out, cancelled, err := db.searchMany(ctx.Done(), queries, k, ef, workers, route)
	if err != nil {
		return nil, route, err
	}
	db.router.Record(route)
	if cancelled {
		partial := false
		for _, r := range out {
			if r != nil {
				partial = true
				break
			}
		}
		return out, route, cancelErr(ctx, partial)
	}
	return out, route, nil
}
