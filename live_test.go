// Tests for the live mutable index (live.go): mutation semantics,
// tombstone visibility across every search path, WAL-journaled crash
// recovery, snapshot+journal compaction, and the concurrent mutate/search
// contract. The crash-point-at-every-byte-offset table test lives in
// persist_test.go next to the snapshot crash tests.
package ansmet_test

import (
	"errors"
	"math"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"ansmet"
	"ansmet/internal/dataset"
	"ansmet/internal/vecmath"
)

// liveOpts are the options every mutation test shares; a small RepairEvery
// exercises the deferred-repair batching within test-sized op sequences.
func liveOpts() ansmet.Options {
	return ansmet.Options{
		Metric: ansmet.L2, Elem: ansmet.Float32,
		EfConstruction: 40, Mutable: true, RepairEvery: 4,
	}
}

// mutOp is one scripted mutation for the recovery-equivalence tests.
type mutOp struct {
	kind string // "add", "delete", "update"
	id   uint32 // delete/update target
	vec  []float32
}

// scriptOps builds a deterministic mutation sequence over a database of n
// initial vectors: interleaved adds, deletes and updates that cross the
// RepairEvery threshold at least once.
func scriptOps(n, dim int) []mutOp {
	fresh := makeVectors(12, dim, 1.3)
	return []mutOp{
		{kind: "add", vec: fresh[0]},
		{kind: "delete", id: 1},
		{kind: "add", vec: fresh[1]},
		{kind: "update", id: 3, vec: fresh[2]},
		{kind: "delete", id: uint32(n - 1)},
		{kind: "add", vec: fresh[3]},
		{kind: "delete", id: 5},
		{kind: "delete", id: 7}, // crosses RepairEvery=4 → repair batch
		{kind: "add", vec: fresh[4]},
		{kind: "update", id: uint32(n), vec: fresh[5]}, // updates an appended id
		{kind: "delete", id: 9},
		{kind: "add", vec: fresh[6]},
	}
}

// applyOps replays the first m scripted ops through the public mutation
// API.
func applyOps(t *testing.T, db *ansmet.Database, ops []mutOp) {
	t.Helper()
	for i, op := range ops {
		var err error
		switch op.kind {
		case "add":
			_, err = db.Add(op.vec)
		case "delete":
			err = db.Delete(op.id)
		case "update":
			_, err = db.Update(op.id, op.vec)
		}
		if err != nil {
			t.Fatalf("op %d (%s): %v", i, op.kind, err)
		}
	}
}

// sameSearchState asserts a and b are byte-identical in everything a
// client can observe: population, tombstones, pending repair, and the
// results of the beam, tiered and exact paths over the given queries.
func sameSearchState(t *testing.T, a, b *ansmet.Database, queries [][]float32) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len: %d vs %d", a.Len(), b.Len())
	}
	if a.Tombstones() != b.Tombstones() {
		t.Fatalf("Tombstones: %d vs %d", a.Tombstones(), b.Tombstones())
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.PendingRepair != sb.PendingRepair {
		t.Fatalf("PendingRepair: %d vs %d", sa.PendingRepair, sb.PendingRepair)
	}
	for qi, q := range queries {
		ra, err := a.SearchEf(q, 10, 50)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.SearchEf(q, 10, 50)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("query %d: beam results diverge:\n%v\n%v", qi, ra, rb)
		}
		ea, _, err := a.ExactSearch(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		eb, _, err := b.ExactSearch(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("query %d: exact results diverge:\n%v\n%v", qi, ea, eb)
		}
		ta, _, err := a.TieredSearch(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		tb, _, err := b.TieredSearch(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("query %d: tiered results diverge:\n%v\n%v", qi, ta, tb)
		}
	}
}

func TestMutableBasics(t *testing.T) {
	ds := dataset.Generate(dataset.ProfileByName("SIFT"), 300, 4, 11)
	dim := len(ds.Vectors[0])

	// Immutable databases reject mutation with the typed error.
	ro, err := ansmet.New(ds.Vectors, ansmet.Options{Metric: ansmet.L2, Elem: ansmet.Float32, EfConstruction: 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Add(ds.Vectors[0]); !errors.Is(err, ansmet.ErrNotMutable) {
		t.Fatalf("Add on immutable db: %v", err)
	}
	if err := ro.Delete(0); !errors.Is(err, ansmet.ErrNotMutable) {
		t.Fatalf("Delete on immutable db: %v", err)
	}
	if ro.Deleted(0) || ro.Tombstones() != 0 || ro.Mutable() {
		t.Fatal("immutable db reports mutation state")
	}

	// Base designs have no incremental store: Mutable is rejected.
	opts := liveOpts()
	opts.Design = ansmet.UseDesign(ansmet.CPUBase)
	if _, err := ansmet.New(ds.Vectors, opts); err == nil {
		t.Fatal("Mutable + CPUBase should fail")
	}

	db, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !db.Mutable() {
		t.Fatal("Mutable() = false")
	}

	// Add assigns the next dense id and the vector becomes retrievable.
	id, err := db.Add(ds.Vectors[1])
	if err != nil {
		t.Fatal(err)
	}
	if id != 300 || db.Len() != 301 {
		t.Fatalf("Add id=%d Len=%d", id, db.Len())
	}
	if v, ok := db.Vector(id); !ok || len(v) != dim {
		t.Fatalf("Vector(%d) = %v %v", id, v, ok)
	}

	// Delete tombstones; double-delete and unknown ids are typed errors.
	if err := db.Delete(5); err != nil {
		t.Fatal(err)
	}
	if !db.Deleted(5) || db.Tombstones() != 1 {
		t.Fatalf("Deleted(5)=%v Tombstones=%d", db.Deleted(5), db.Tombstones())
	}
	if err := db.Delete(5); !errors.Is(err, ansmet.ErrAlreadyDeleted) {
		t.Fatalf("double delete: %v", err)
	}
	if err := db.Delete(99999); !errors.Is(err, ansmet.ErrUnknownID) {
		t.Fatalf("unknown delete: %v", err)
	}
	if _, err := db.Update(5, ds.Vectors[2]); !errors.Is(err, ansmet.ErrAlreadyDeleted) {
		t.Fatalf("update of deleted id: %v", err)
	}

	// Update = add new + tombstone old, atomically visible.
	nid, err := db.Update(7, ds.Vectors[3])
	if err != nil {
		t.Fatal(err)
	}
	if nid != 301 || !db.Deleted(7) || db.Deleted(nid) {
		t.Fatalf("Update: nid=%d Deleted(7)=%v Deleted(nid)=%v", nid, db.Deleted(7), db.Deleted(nid))
	}

	// Vector validation is the ingestion bar.
	if _, err := db.Add([]float32{1, 2}); !errors.Is(err, ansmet.ErrDimension) {
		t.Fatalf("short add: %v", err)
	}
	bad := make([]float32, dim)
	bad[3] = float32(math.NaN())
	if _, err := db.Add(bad); !errors.Is(err, ansmet.ErrBadVector) {
		t.Fatalf("NaN add: %v", err)
	}
	for _, err := range []error{
		ansmet.ErrNotMutable, ansmet.ErrUnknownID, ansmet.ErrAlreadyDeleted, ansmet.ErrBadVector,
	} {
		if !ansmet.IsMutationError(err) {
			t.Fatalf("IsMutationError(%v) = false", err)
		}
	}

	st := db.Stats()
	if !st.Mutable || st.Adds != 1 || st.Deletes != 1 || st.Updates != 1 || st.Tombstones != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// Close stops mutation but not search.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Add(ds.Vectors[4]); !errors.Is(err, ansmet.ErrDatabaseClosed) {
		t.Fatalf("add after close: %v", err)
	}
	if _, err := db.Search(ds.Queries[0], 5); err != nil {
		t.Fatalf("search after close: %v", err)
	}
}

func TestMutableSearchExcludesTombstones(t *testing.T) {
	ds := dataset.Generate(dataset.ProfileByName("SIFT"), 500, 6, 21)
	db, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Delete each query's current best hit, then assert no path returns a
	// tombstoned id anymore.
	for _, q := range ds.Queries {
		res, err := db.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if db.Deleted(res[0].ID) {
			continue
		}
		if err := db.Delete(res[0].ID); err != nil {
			t.Fatal(err)
		}
	}
	check := func(path string, res []ansmet.Neighbor, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, n := range res {
			if db.Deleted(n.ID) {
				t.Fatalf("%s returned tombstoned id %d", path, n.ID)
			}
		}
	}
	for _, q := range ds.Queries {
		res, err := db.Search(q, 10)
		check("Search", res, err)
		res, _, err = db.ExactSearch(q, 10)
		check("ExactSearch", res, err)
		res, _, err = db.TieredSearch(q, 10)
		check("TieredSearch", res, err)
		res, err = db.SearchFiltered(q, 10, func(id uint32) bool { return id%2 == 0 })
		check("SearchFiltered", res, err)
		for _, n := range res {
			if n.ID%2 != 0 {
				t.Fatalf("SearchFiltered ignored the caller predicate: id %d", n.ID)
			}
		}
	}
	many, err := db.SearchMany(ds.Queries, 10, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range many {
		check("SearchMany", res, nil)
	}

	// A freshly added vector is immediately searchable: its own query
	// returns it first.
	nv := make([]float32, len(ds.Vectors[0]))
	for d := range nv {
		nv[d] = ds.Vectors[0][d] + 500 // far from the population
	}
	id, err := db.Add(nv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(nv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != id {
		t.Fatalf("self-query of added vector: %v (want id %d)", res, id)
	}
}

// TestMutableNilMutationByteIdentity pins the acceptance criterion that a
// mutable database nobody has mutated behaves byte-identically to the
// immutable build: enabling the publication protocols must not change a
// single result.
func TestMutableNilMutationByteIdentity(t *testing.T) {
	ds := dataset.Generate(dataset.ProfileByName("GloVe"), 400, 6, 31)
	imm, err := ansmet.New(ds.Vectors, ansmet.Options{Metric: ansmet.L2, Elem: ansmet.Float32, EfConstruction: 40})
	if err != nil {
		t.Fatal(err)
	}
	mut, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	sameSearchState(t, imm, mut, ds.Queries)
	for _, q := range ds.Queries {
		a, err := imm.SearchFiltered(q, 5, func(id uint32) bool { return id%3 != 0 })
		if err != nil {
			t.Fatal(err)
		}
		b, err := mut.SearchFiltered(q, 5, func(id uint32) bool { return id%3 != 0 })
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("filtered results diverge:\n%v\n%v", a, b)
		}
	}
}

// TestWALRecoveryEquivalence is the core durability property: a database
// recovered by replaying the journal over a deterministic rebuild is
// state-identical to one that applied the acknowledged ops directly.
func TestWALRecoveryEquivalence(t *testing.T) {
	ds := dataset.Generate(dataset.ProfileByName("SIFT"), 200, 5, 41)
	dim := len(ds.Vectors[0])
	ops := scriptOps(200, dim)
	walPath := t.TempDir() + "/journal.wal"

	db, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachWAL(walPath); err != nil {
		t.Fatal(err)
	}
	applyOps(t, db, ops)
	if got := db.Stats().WALLastSeq; got != uint64(len(ops)) {
		t.Fatalf("WALLastSeq = %d, want %d", got, len(ops))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: straight-line application, no journal.
	ref, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, ops)

	// Recovery: identical rebuild + journal replay.
	rec, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.AttachWAL(walPath); err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.Stats().WALReplayed; got != uint64(len(ops)) {
		t.Fatalf("WALReplayed = %d, want %d", got, len(ops))
	}
	sameSearchState(t, ref, rec, ds.Queries)

	// The recovered database continues accepting journaled mutations.
	if _, err := rec.Add(ds.Vectors[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Add(ds.Vectors[0]); err != nil {
		t.Fatal(err)
	}
	sameSearchState(t, ref, rec, ds.Queries)
}

// TestSnapshotCompactionRoundTrip drives the full durability lifecycle:
// mutate → SaveFile (compaction: journal truncates) → mutate more → crash
// → LoadFile (snapshot + journal replay) ≡ straight-line reference.
func TestSnapshotCompactionRoundTrip(t *testing.T) {
	ds := dataset.Generate(dataset.ProfileByName("SIFT"), 200, 5, 51)
	dim := len(ds.Vectors[0])
	ops := scriptOps(200, dim)
	dir := t.TempDir()
	snapPath := dir + "/db.snap"

	db, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachWAL(ansmet.WALName(snapPath)); err != nil {
		t.Fatal(err)
	}
	applyOps(t, db, ops[:7])
	if err := db.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	// Compaction truncated the journal to its bare header.
	if fi, err := os.Stat(ansmet.WALName(snapPath)); err != nil || fi.Size() != 11 {
		t.Fatalf("journal after compaction: %v bytes, err %v", fi.Size(), err)
	}
	applyOps(t, db, ops[7:])
	if err := db.Close(); err != nil { // crash: the snapshot stays stale
		t.Fatal(err)
	}

	ref, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, ref, ops)

	rec, err := ansmet.LoadFile(snapPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if !rec.Mutable() {
		t.Fatal("loaded database is not mutable")
	}
	if got := rec.Stats().WALReplayed; got != uint64(len(ops)-7) {
		t.Fatalf("WALReplayed = %d, want %d", got, len(ops)-7)
	}
	sameSearchState(t, ref, rec, ds.Queries)

	// Second cycle: compact the recovered db and load again.
	if err := rec.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	rec.Close()
	rec2, err := ansmet.LoadFile(snapPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	sameSearchState(t, ref, rec2, ds.Queries)
}

// TestLiveSnapshotRejectsBaseOverride: a live snapshot cannot be loaded
// under a design with no tombstone-filtering store.
func TestLiveSnapshotRejectsBaseOverride(t *testing.T) {
	ds := dataset.Generate(dataset.ProfileByName("SIFT"), 120, 2, 61)
	db, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(3); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/live.snap"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ansmet.LoadFile(path, ansmet.UseDesign(ansmet.CPUBase)); err == nil {
		t.Fatal("loading a live snapshot under CPUBase should fail")
	}
}

// TestConcurrentMutateSearch exercises the tentpole concurrency contract
// under the race detector: one writer streams adds/deletes/updates (and
// periodic forced repairs) while searchers assert that (a) no search
// started after a delete acked returns the tombstoned id, and (b) every
// returned distance is consistent with the stored vector — a torn vector
// or neighbor list would surface as a distance mismatch or a crash.
func TestConcurrentMutateSearch(t *testing.T) {
	ds := dataset.Generate(dataset.ProfileByName("SIFT"), 400, 8, 71)
	db, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	fresh := makeVectors(64, len(ds.Vectors[0]), 1.1)

	var (
		stop    atomic.Bool
		ackMu   sync.Mutex
		ackDead []uint32 // ids whose Delete has returned
	)
	ackSnapshot := func() map[uint32]bool {
		ackMu.Lock()
		defer ackMu.Unlock()
		m := make(map[uint32]bool, len(ackDead))
		for _, id := range ackDead {
			m[id] = true
		}
		return m
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single mutation writer
		defer wg.Done()
		next := uint32(2) // deletion cursor over the initial population
		for i := 0; !stop.Load(); i++ {
			switch i % 4 {
			case 0, 1:
				if _, err := db.Add(fresh[i%len(fresh)]); err != nil {
					t.Error(err)
					return
				}
			case 2:
				if err := db.Delete(next); err != nil {
					t.Error(err)
					return
				}
				ackMu.Lock()
				ackDead = append(ackDead, next)
				ackMu.Unlock()
				next += 3
			case 3:
				if i%16 == 3 {
					db.Maintain()
				}
				if _, err := db.Update(next, fresh[(i+7)%len(fresh)]); err != nil {
					t.Error(err)
					return
				}
				ackMu.Lock()
				ackDead = append(ackDead, next)
				ackMu.Unlock()
				next += 3
			}
			if next > 380 {
				stop.Store(true)
			}
		}
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var dst []ansmet.Neighbor
			for i := 0; !stop.Load(); i++ {
				q := ds.Queries[(i+w)%len(ds.Queries)]
				dead := ackSnapshot() // acked before this search starts
				var res []ansmet.Neighbor
				var err error
				switch i % 3 {
				case 0:
					res, err = db.SearchInto(q, 10, 50, dst)
					dst = res
				case 1:
					res, _, err = db.TieredSearch(q, 10)
				default:
					res, _, err = db.ExactSearch(q, 10)
				}
				if err != nil {
					t.Error(err)
					return
				}
				for _, n := range res {
					if dead[n.ID] {
						t.Errorf("search returned id %d deleted before it started", n.ID)
						return
					}
					v, ok := db.Vector(n.ID)
					if !ok {
						t.Errorf("result id %d has no stored vector", n.ID)
						return
					}
					if d := vecmath.L2.Distance(q, v); math.Abs(d-n.Dist) > 1e-3*(1+math.Abs(d)) {
						t.Errorf("id %d: reported dist %v, stored vector gives %v (torn read?)", n.ID, n.Dist, d)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Post-quiescence sanity: graph still returns full, tombstone-free
	// result sets.
	for _, q := range ds.Queries {
		res, err := db.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 10 {
			t.Fatalf("post-soak search returned %d results", len(res))
		}
		for _, n := range res {
			if db.Deleted(n.ID) {
				t.Fatalf("post-soak search returned tombstoned id %d", n.ID)
			}
		}
	}
}

// TestSearchUnderMutationAllocs pins the read hot path at zero heap
// allocations per query on a quiesced mutable database — the live
// publication protocol (view capture, stripe-locked neighbor copies,
// tombstone filter, store snapshot pinning) must not cost an allocation.
func TestSearchUnderMutationAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	ds := dataset.Generate(dataset.ProfileByName("SIFT"), 500, 4, 81)
	db, err := ansmet.New(ds.Vectors, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	ops := scriptOps(500, len(ds.Vectors[0]))
	applyOps(t, db, ops)

	var dst []ansmet.Neighbor
	for i := 0; i < 4; i++ {
		if dst, err = db.SearchInto(ds.Queries[i%len(ds.Queries)], 10, 64, dst); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		dst, err = db.SearchInto(ds.Queries[i%len(ds.Queries)], 10, 64, dst)
		i++
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("SearchInto on a mutated database allocates %.1f objects/query, want 0", avg)
	}
}

// TestFilteredRecallTargetByteIdentity extends the RecallTarget ∈ {0, 1}
// byte-identity guarantee (ROADMAP item 4 remainder) to the filtered
// search paths: target 0 (machinery off) and target 1 (exact recall) must
// produce byte-identical filtered results, and an adaptive target must
// keep filtered recall near the exact answer.
func TestFilteredRecallTargetByteIdentity(t *testing.T) {
	ds := dataset.Generate(dataset.ProfileByName("GloVe"), 500, 6, 91)
	build := func(target float64) *ansmet.Database {
		db, err := ansmet.New(ds.Vectors, ansmet.Options{
			Metric: ansmet.L2, Elem: ansmet.Float32,
			EfConstruction: 40, RecallTarget: target,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	d0, d1 := build(0), build(1)
	filter := func(id uint32) bool { return id%3 != 0 }
	for qi, q := range ds.Queries {
		r0, err := d0.SearchFiltered(q, 10, filter)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := d1.SearchFiltered(q, 10, filter)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r0, r1) {
			t.Fatalf("query %d: RecallTarget 0 vs 1 filtered results diverge:\n%v\n%v", qi, r0, r1)
		}
	}

	// An adaptive target stays close to the exact filtered answer.
	da := build(0.9)
	sum, n := 0.0, 0
	for _, q := range ds.Queries {
		exact, err := d0.SearchFiltered(q, 10, filter)
		if err != nil {
			t.Fatal(err)
		}
		adap, err := da.SearchFiltered(q, 10, filter)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]uint32, len(exact))
		for i, r := range exact {
			want[i] = r.ID
		}
		got := make([]uint32, len(adap))
		for i, r := range adap {
			got[i] = r.ID
		}
		sum += ansmet.RecallAtK(got, want)
		n++
	}
	if rec := sum / float64(n); rec < 0.85 {
		t.Fatalf("adaptive filtered recall %v < 0.85 vs exact filtered baseline", rec)
	}
}
