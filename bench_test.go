// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§7), plus micro-benchmarks of the core data
// structures. Running
//
//	go test -bench=. -benchmem
//
// regenerates every experiment table on the default workload scale and
// prints it to stdout (once per process, whatever b.N is). Set
// ANSMET_BENCH_QUICK=1 to use the small smoke-test scale.
package ansmet_test

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"ansmet"
	"ansmet/internal/bitplane"
	"ansmet/internal/core"
	"ansmet/internal/dataset"
	"ansmet/internal/dram"
	"ansmet/internal/experiments"
	"ansmet/internal/hnsw"
	"ansmet/internal/layout"
	"ansmet/internal/prefixelim"
	"ansmet/internal/stats"
	"ansmet/internal/vecmath"
)

var (
	benchOnce   sync.Once
	benchShared *experiments.Runner
)

func benchRunner() *experiments.Runner {
	benchOnce.Do(func() {
		scale := experiments.DefaultScale()
		if os.Getenv("ANSMET_BENCH_QUICK") != "" {
			scale = experiments.QuickScale()
		}
		benchShared = experiments.NewRunner(scale)
	})
	return benchShared
}

// tablePrinted dedupes table output across b.N iterations.
var tablePrinted sync.Map

func runTable(b *testing.B, name string, fn func() *experiments.Table) {
	b.Helper()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = fn()
	}
	if _, dup := tablePrinted.LoadOrStore(name, true); !dup {
		tab.Format(os.Stdout)
	}
}

// ---------------------------------------------------------------------------
// One benchmark per paper table/figure (see DESIGN.md per-experiment index).
// ---------------------------------------------------------------------------

func BenchmarkFig01Breakdown(b *testing.B) {
	runTable(b, "fig1", func() *experiments.Table { return benchRunner().Fig01() })
}

func BenchmarkFig03PrefixEntropy(b *testing.B) {
	runTable(b, "fig3", func() *experiments.Table { return benchRunner().Fig03() })
}

func BenchmarkFig06Speedup(b *testing.B) {
	runTable(b, "fig6", func() *experiments.Table { return benchRunner().Fig06([]int{1, 5, 10}) })
}

func BenchmarkFig07Energy(b *testing.B) {
	runTable(b, "fig7", func() *experiments.Table { return benchRunner().Fig07() })
}

func BenchmarkFig08RecallQPS(b *testing.B) {
	runTable(b, "fig8", func() *experiments.Table { return benchRunner().Fig08() })
}

func BenchmarkFig09Polling(b *testing.B) {
	runTable(b, "fig9", func() *experiments.Table { return benchRunner().Fig09() })
}

func BenchmarkFig10FetchUtil(b *testing.B) {
	runTable(b, "fig10", func() *experiments.Table { return benchRunner().Fig10() })
}

func BenchmarkFig11Sampling(b *testing.B) {
	runTable(b, "fig11", func() *experiments.Table { return benchRunner().Fig11() })
}

func BenchmarkFig12Partitioning(b *testing.B) {
	runTable(b, "fig12", func() *experiments.Table { return benchRunner().Fig12() })
}

func BenchmarkTable3Scaling(b *testing.B) {
	runTable(b, "table3", func() *experiments.Table { return benchRunner().Table3() })
}

func BenchmarkTable4Preproc(b *testing.B) {
	runTable(b, "table4", func() *experiments.Table { return benchRunner().Table4() })
}

func BenchmarkTable5Outliers(b *testing.B) {
	runTable(b, "table5", func() *experiments.Table { return benchRunner().Table5() })
}

func BenchmarkReplication(b *testing.B) {
	runTable(b, "replication", func() *experiments.Table { return benchRunner().Replication() })
}

func BenchmarkAblationBeamBatch(b *testing.B) {
	runTable(b, "ablation-batch", func() *experiments.Table { return benchRunner().AblationBeamBatch() })
}

func BenchmarkAblationQuantization(b *testing.B) {
	runTable(b, "ablation-quant", func() *experiments.Table { return benchRunner().AblationQuantization() })
}

func BenchmarkFigTieredFrontier(b *testing.B) {
	runTable(b, "frontier", func() *experiments.Table { return benchRunner().FigTieredFrontier() })
}

func BenchmarkFigPrecisionFrontier(b *testing.B) {
	runTable(b, "precision", func() *experiments.Table { return benchRunner().FigPrecisionFrontier() })
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core building blocks.
// ---------------------------------------------------------------------------

// benchData builds a small SIFT-profile working set shared by the micro
// benchmarks.
var benchData = sync.OnceValue(func() *dataset.Dataset {
	return dataset.Generate(dataset.ProfileByName("SIFT"), 2000, 16, 99)
})

func BenchmarkElementEncode(b *testing.B) {
	ds := benchData()
	v := ds.Vectors[0]
	var codes []uint32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		codes = vecmath.Uint8.EncodeVector(v, codes[:0])
	}
	_ = codes
}

func BenchmarkLayoutTransform(b *testing.B) {
	ds := benchData()
	sched := layout.SimpleHeuristicSchedule(vecmath.Uint8)
	l := bitplane.MustLayout(vecmath.Uint8, 128, sched)
	codes := vecmath.Uint8.EncodeVector(ds.Vectors[0], nil)
	buf := make([]byte, l.VectorBytes())
	b.SetBytes(int64(l.VectorBytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Transform(codes, buf)
	}
}

func BenchmarkBounderRunET(b *testing.B) {
	ds := benchData()
	sched := layout.SimpleHeuristicSchedule(vecmath.Uint8)
	l := bitplane.MustLayout(vecmath.Uint8, 128, sched)
	bd := bitplane.NewBounder(l, vecmath.L2, 0)
	bd.ResetQuery(ds.Queries[0])
	buf := make([]byte, l.VectorBytes())
	l.Transform(vecmath.Uint8.EncodeVector(ds.Vectors[0], nil), buf)
	th := vecmath.L2.Distance(ds.Queries[0], ds.Vectors[1]) // realistic threshold
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bd.Reset()
		bd.RunET(buf, th)
	}
}

func BenchmarkETEngineCompare(b *testing.B) {
	ds := benchData()
	st, err := core.BuildStore(ds.Vectors, vecmath.Uint8,
		layout.SimpleHeuristicSchedule(vecmath.Uint8), prefixelim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	eng := st.NewETEngine(vecmath.L2)
	eng.StartQuery(ds.Queries[0])
	th := vecmath.L2.Distance(ds.Queries[0], ds.Vectors[1])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Compare(uint32(i%len(ds.Vectors)), th)
	}
}

func BenchmarkHNSWSearch(b *testing.B) {
	ds := benchData()
	ix, err := hnsw.Build(ds.Vectors, vecmath.L2, hnsw.Config{
		M: 8, MaxDegree: 16, EfConstruction: 100, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := core.MustExactEngine(ds.Vectors, vecmath.L2, vecmath.Uint8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Search(ds.Queries[i%len(ds.Queries)], 10, 64, eng, nil)
	}
}

// benchDB builds a small default-design database shared by the search hot
// path benchmarks (BenchmarkSearchAllocs, BenchmarkSearchMany).
var benchDB = sync.OnceValue(func() *ansmet.Database {
	ds := benchData()
	db, err := ansmet.New(ds.Vectors, ansmet.Options{
		Metric: ansmet.L2, Elem: ansmet.Uint8, EfConstruction: 100,
	})
	if err != nil {
		panic(err)
	}
	return db
})

// BenchmarkBounderConsumeLine measures the per-line cost of the incremental
// lower-bound update — the innermost loop of every ET comparison.
func BenchmarkBounderConsumeLine(b *testing.B) {
	cases := []struct {
		name    string
		profile string
		elem    vecmath.ElemType
	}{
		{"uint8-128", "SIFT", vecmath.Uint8},
		{"fp32-960", "GIST", vecmath.Float32},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			ds := dataset.Generate(dataset.ProfileByName(tc.profile), 4, 1, 7)
			dim := len(ds.Vectors[0])
			sched := layout.SimpleHeuristicSchedule(tc.elem)
			l := bitplane.MustLayout(tc.elem, dim, sched)
			bd := bitplane.NewBounder(l, vecmath.L2, 0)
			bd.ResetQuery(ds.Queries[0])
			buf := make([]byte, l.VectorBytes())
			l.Transform(tc.elem.EncodeVector(ds.Vectors[0], nil), buf)
			lines := l.LinesPerVector()
			b.SetBytes(int64(l.VectorBytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bd.Reset()
				for ln := 0; ln < lines; ln++ {
					bd.ConsumeNext(buf[ln*bitplane.LineBytes : (ln+1)*bitplane.LineBytes])
				}
			}
			b.ReportMetric(float64(b.N*lines)/b.Elapsed().Seconds(), "lines/s")
		})
	}
}

// BenchmarkDistanceKernels measures the full-distance kernels for every
// metric at three representative dimensions.
func BenchmarkDistanceKernels(b *testing.B) {
	for _, m := range []vecmath.Metric{vecmath.L2, vecmath.InnerProduct, vecmath.Cosine} {
		for _, dim := range []int{128, 384, 960} {
			b.Run(fmt.Sprintf("%v-%d", m, dim), func(b *testing.B) {
				rng := stats.NewRNG(uint64(dim))
				x := make([]float32, dim)
				y := make([]float32, dim)
				for d := 0; d < dim; d++ {
					x[d] = float32(rng.Float64())
					y[d] = float32(rng.Float64())
				}
				b.SetBytes(int64(8 * dim))
				b.ReportAllocs()
				s := 0.0
				for i := 0; i < b.N; i++ {
					s += m.Distance(x, y)
				}
				if math.IsNaN(s) {
					b.Fatal("impossible")
				}
			})
		}
	}
}

// BenchmarkKernelImpls measures every kernel implementation in the vecmath
// dispatch table side by side (scalar vs AVX2 vs AVX-512 where the CPU has
// them) on the two-vector kernels and the fused bounder block kernel, at a
// production dimension. The sub-benchmark names make per-implementation
// speedups readable from one run; allocs/op is budget-gated at 0.
func BenchmarkKernelImpls(b *testing.B) {
	const dim = 384
	rng := stats.NewRNG(77)
	x := make([]float32, dim)
	y := make([]float32, dim)
	contrib := make([]float64, dim)
	blockSums := make([]float64, (dim+vecmath.BlockDims-1)/vecmath.BlockDims)
	for d := 0; d < dim; d++ {
		x[d] = float32(rng.Float64())
		y[d] = float32(rng.Float64())
		contrib[d] = rng.Float64()
	}
	for _, im := range vecmath.Implementations() {
		b.Run("SquaredL2/"+im.Name, func(b *testing.B) {
			b.SetBytes(int64(8 * dim))
			b.ReportAllocs()
			s := 0.0
			for i := 0; i < b.N; i++ {
				s += im.SquaredL2(x, y)
			}
			if math.IsNaN(s) {
				b.Fatal("impossible")
			}
		})
		b.Run("Dot/"+im.Name, func(b *testing.B) {
			b.SetBytes(int64(8 * dim))
			b.ReportAllocs()
			s := 0.0
			for i := 0; i < b.N; i++ {
				s += im.Dot(x, y)
			}
			if math.IsNaN(s) {
				b.Fatal("impossible")
			}
		})
		b.Run("BlockSumsTotal/"+im.Name, func(b *testing.B) {
			b.SetBytes(int64(8 * dim))
			b.ReportAllocs()
			s := 0.0
			for i := 0; i < b.N; i++ {
				s += im.BlockSumsTotal(contrib, blockSums, 0, len(blockSums)-1)
			}
			if math.IsNaN(s) {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkSearchAllocs measures one steady-state query on the default
// database through the allocation-free SearchInto path, reporting
// allocations per operation (the gated budget: 0 allocs/op).
func BenchmarkSearchAllocs(b *testing.B) {
	db := benchDB()
	ds := benchData()
	var dst []ansmet.Neighbor
	// Warm the pools (first search grows the scratch buffers).
	var err error
	if dst, err = db.SearchInto(ds.Queries[0], 10, 64, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = db.SearchInto(ds.Queries[i%len(ds.Queries)], 10, 64, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMutatedDB builds a mutable database, applies a burst of journaled-
// style mutations (adds, deletes, updates, a forced repair) and quiesces,
// so BenchmarkSearchUnderMutation measures the live read path — view
// capture, tombstone filter, store snapshot pinning — rather than an
// immutable fast path.
var benchMutatedDB = sync.OnceValue(func() *ansmet.Database {
	ds := benchData()
	db, err := ansmet.New(ds.Vectors, ansmet.Options{
		Metric: ansmet.L2, Elem: ansmet.Uint8, EfConstruction: 100,
		Mutable: true, RepairEvery: 16,
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 64; i++ {
		switch i % 4 {
		case 0, 1:
			_, err = db.Add(ds.Vectors[i])
		case 2:
			err = db.Delete(uint32(3 * i))
		default:
			_, err = db.Update(uint32(3*i), ds.Vectors[i+1])
		}
		if err != nil {
			panic(err)
		}
	}
	db.Maintain()
	return db
})

// BenchmarkSearchUnderMutation is BenchmarkSearchAllocs on a database that
// has lived: vectors appended, ids tombstoned, the graph repaired. The
// benchgate budget pins allocs/op at 0 — mutation support must not cost
// the read hot path a single allocation.
func BenchmarkSearchUnderMutation(b *testing.B) {
	db := benchMutatedDB()
	ds := benchData()
	var dst []ansmet.Neighbor
	var err error
	if dst, err = db.SearchInto(ds.Queries[0], 10, 64, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = db.SearchInto(ds.Queries[i%len(ds.Queries)], 10, 64, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchWithDeadline measures the steady-state cost of the
// deadline-aware path (SearchCtxInto with a live context): the cooperative
// cancellation checkpoints must keep the gated budget of 0 allocs/op, and
// the time delta vs BenchmarkSearchAllocs is the whole price of deadline
// support.
func BenchmarkSearchWithDeadline(b *testing.B) {
	db := benchDB()
	ds := benchData()
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	var dst []ansmet.Neighbor
	var err error
	if dst, err = db.SearchCtxInto(ctx, ds.Queries[0], 10, 64, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = db.SearchCtxInto(ctx, ds.Queries[i%len(ds.Queries)], 10, 64, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTieredSearch measures one steady-state query through the tiered
// bound-first/exact-rerank pipeline at the default (lossless) budget,
// reporting allocations per operation (the gated budget: 0 allocs/op).
func BenchmarkTieredSearch(b *testing.B) {
	db := benchDB()
	ds := benchData()
	var dst []ansmet.Neighbor
	var err error
	if dst, _, err = db.TieredSearchInto(ds.Queries[0], 10, 0, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, _, err = db.TieredSearchInto(ds.Queries[i%len(ds.Queries)], 10, 0, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterOverhead measures the routed entry point on the explicit
// NDP path with a live deadline: the delta versus BenchmarkSearchWithDeadline
// is the whole price of the routing envelope (decision, in-flight tracking,
// counters, EWMA cost observation). Budget: 0 allocs/op.
func BenchmarkRouterOverhead(b *testing.B) {
	db := benchDB()
	ds := benchData()
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	var dst []ansmet.Neighbor
	var err error
	if dst, _, err = db.SearchRouted(ctx, ds.Queries[0], 10, 64, ansmet.RouteNDP, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, _, err = db.SearchRouted(ctx, ds.Queries[i%len(ds.Queries)], 10, 64, ansmet.RouteNDP, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAdaptive builds a beam-hostile working set (the GloVe profile:
// inner-product metric, high-entropy fp32 planes, 7 lines/vector) and two
// databases over the same vectors: a plain fixed-depth one and an adaptive
// one at RecallTarget 0.9. Shared by the adaptive-precision benchmarks.
var benchAdaptive = sync.OnceValue(func() (out struct {
	ds              *dataset.Dataset
	fixed, adaptive *ansmet.Database
}) {
	out.ds = dataset.Generate(dataset.ProfileByName("GloVe"), 2000, 16, 99)
	opts := ansmet.Options{
		Metric: ansmet.InnerProduct, Elem: ansmet.Float32, EfConstruction: 100,
	}
	var err error
	if out.fixed, err = ansmet.New(out.ds.Vectors, opts); err != nil {
		panic(err)
	}
	opts.RecallTarget = 0.9
	if out.adaptive, err = ansmet.New(out.ds.Vectors, opts); err != nil {
		panic(err)
	}
	return out
})

// BenchmarkAdaptivePrecision measures one steady-state beam query on the
// beam-hostile profile, fixed full-depth refinement vs the adaptive
// per-partition schedule (RecallTarget 0.9). The fixed/adaptive ns ratio is
// the matched-recall speedup BENCH_pr9.json records; FigPrecisionFrontier
// verifies the recall match in lines. Budget: 0 allocs/op on both arms.
func BenchmarkAdaptivePrecision(b *testing.B) {
	w := benchAdaptive()
	for _, arm := range []struct {
		name string
		db   *ansmet.Database
	}{{"fixed", w.fixed}, {"adaptive", w.adaptive}} {
		b.Run(arm.name, func(b *testing.B) {
			var dst []ansmet.Neighbor
			var err error
			if dst, err = arm.db.SearchInto(w.ds.Queries[0], 10, 64, dst); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dst, err = arm.db.SearchInto(w.ds.Queries[i%len(w.ds.Queries)], 10, 64, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecallTargetOverhead measures the steady-state tiered query on
// the same beam-hostile workload with the RecallTarget machinery off
// (fixed) and on (adaptive: tuner budget resolution, the per-partition
// depth schedule with escalation, and the post-query calibration
// feedback). The fixed/adaptive delta is the whole price of the knob on
// the tiered path — mostly the deeper stage-1 schedule the depth map
// picks, which FigPrecisionFrontier shows buying a far smaller exact
// re-rank pool. Budget: 0 allocs/op on both arms.
func BenchmarkRecallTargetOverhead(b *testing.B) {
	w := benchAdaptive()
	for _, arm := range []struct {
		name string
		db   *ansmet.Database
	}{{"fixed", w.fixed}, {"adaptive", w.adaptive}} {
		b.Run(arm.name, func(b *testing.B) {
			var dst []ansmet.Neighbor
			var err error
			if dst, _, err = arm.db.TieredSearchInto(w.ds.Queries[0], 10, 0, dst); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dst, _, err = arm.db.TieredSearchInto(w.ds.Queries[i%len(w.ds.Queries)], 10, 0, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchMany measures parallel batch-search throughput across all
// cores.
func BenchmarkSearchMany(b *testing.B) {
	db := benchDB()
	ds := benchData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.SearchMany(ds.Queries, 10, 64, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*len(ds.Queries))/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkDRAMRead(b *testing.B) {
	m := dram.New(dram.DefaultConfig())
	t := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := dram.Addr{Rank: i % 32, Bank: i % 32, Row: int64(i % 64)}
		t = m.Read(t, a, i%2 == 0)
	}
	if math.IsNaN(t) {
		b.Fatal("impossible")
	}
}

func BenchmarkLayoutOptimize(b *testing.B) {
	ds := benchData()
	sample := ds.Vectors[:100]
	an, err := layout.Analyze(sample, vecmath.Uint8, vecmath.L2, layout.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		an.BestParams(true)
	}
}

func BenchmarkTimingReplay(b *testing.B) {
	ds := benchData()
	ix, err := hnsw.Build(ds.Vectors, vecmath.L2, hnsw.Config{
		M: 8, MaxDegree: 16, EfConstruction: 80, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(ds.Vectors, vecmath.Uint8, vecmath.L2, ix,
		core.DefaultSystemConfig(core.NDPETOpt))
	if err != nil {
		b.Fatal(err)
	}
	run := sys.RunHNSW(ds.Queries, 10, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Replay(sys, run.Traces)
	}
	b.ReportMetric(run.Report.QPS(), "simQPS")
	_ = fmt.Sprint()
}
