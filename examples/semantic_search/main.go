// Semantic search: the retrieval-augmented-generation scenario from the
// paper's introduction. Documents are embedded as dense vectors (here: a
// toy bag-of-words hashing embedder, standing in for a neural encoder),
// normalized for cosine similarity, and indexed with ANSMET. A query
// sentence retrieves the most similar documents; the report shows how much
// data movement early termination avoided while computing exactly the same
// answer.
package main

import (
	"fmt"
	"log"
	"strings"

	"ansmet"
)

// embed maps text to a dense vector with hashed bag-of-words features —
// a stand-in for a sentence-embedding model.
func embed(text string, dim int) []float32 {
	v := make([]float32, dim)
	for _, word := range strings.Fields(strings.ToLower(text)) {
		h := uint32(2166136261)
		for i := 0; i < len(word); i++ {
			h = (h ^ uint32(word[i])) * 16777619
		}
		// Spread each word over a few dimensions with signs.
		for j := 0; j < 4; j++ {
			idx := int(h>>uint(8*j)) % dim
			sign := float32(1)
			if h>>uint(8*j+7)&1 == 1 {
				sign = -1
			}
			v[idx] += sign
		}
	}
	ansmet.Normalize(v)
	return v
}

func main() {
	docs := []string{
		"DIMM based near memory processing accelerates vector search",
		"hierarchical navigable small world graphs index high dimensional vectors",
		"early termination skips distance computations beyond the threshold",
		"retrieval augmented generation grounds language models in documents",
		"product quantization compresses vectors with subspace codebooks",
		"the memory wall limits bandwidth between processors and DRAM",
		"inverted file indexes cluster vectors around centroids",
		"gardening in spring requires patience and good soil",
		"the recipe calls for two cups of flour and one egg",
		"stock markets fluctuate with interest rate announcements",
		"bank level parallelism hides DRAM activation latency",
		"cosine similarity compares the angle between embeddings",
		"football season starts in autumn with a derby match",
		"adaptive polling retrieves results from near data units",
		"zipf distributed queries create hot spots across memory ranks",
	}
	// Pad the corpus with shuffled variants so the index has real work.
	corpus := append([]string{}, docs...)
	for i := 0; i < 600; i++ {
		a, b := docs[i%len(docs)], docs[(i*7+3)%len(docs)]
		fa, fb := strings.Fields(a), strings.Fields(b)
		corpus = append(corpus, strings.Join(append(fa[:len(fa)/2], fb[len(fb)/2:]...), " "))
	}

	const dim = 64
	vectors := make([][]float32, len(corpus))
	for i, d := range corpus {
		vectors[i] = embed(d, dim)
	}

	db, err := ansmet.New(vectors, ansmet.Options{
		Metric:         ansmet.Cosine, // vectors pre-normalized by embed
		Elem:           ansmet.Float32,
		EfConstruction: 80,
	})
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"how does near memory hardware speed up vector databases",
		"what stops unnecessary distance calculations",
		"baking bread with flour",
	}
	for _, q := range queries {
		run := db.Run([][]float32{embed(q, dim)}, 3, 32)
		fmt.Printf("query: %q\n", q)
		for _, n := range run.Results[0] {
			fmt.Printf("  %.3f  %s\n", -n.Dist, corpus[n.ID])
		}
		rep := run.Report
		fmt.Printf("  [simulated: %.1f us, fetched %d lines, %.0f%% effectual]\n\n",
			rep.AvgLatencyNs()/1000,
			rep.EffectualLines+rep.IneffectualLines,
			rep.FetchUtilization()*100)
	}
}
