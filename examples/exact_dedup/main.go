// Exact near-duplicate detection: a scenario where *approximate* is not
// good enough. An e-commerce catalog wants every product image whose
// descriptor is provably within a radius of a given item — missing one is a
// compliance problem, so the scan must be exact. ANSMET's early termination
// keeps the scan exact while skipping most of the data of clearly-unrelated
// items (the paper's §4.1 point that the bounds also accelerate accurate
// kNN), and the comparison below shows the fetch savings against a plain
// brute-force scan.
package main

import (
	"fmt"
	"log"

	"ansmet"
	"ansmet/internal/dataset"
)

func main() {
	// A SIFT-profile catalog of 8000 image descriptors, with planted
	// near-duplicates: every 500th vector is a tiny perturbation of item 7.
	p := dataset.ProfileByName("SIFT")
	ds := dataset.Generate(p, 8000, 1, 123)
	for i := 500; i < len(ds.Vectors); i += 500 {
		dup := make([]float32, p.Dim)
		copy(dup, ds.Vectors[7])
		dup[i%p.Dim] += 1 // one quantization step off
		ds.Vectors[i] = dup
	}

	db, err := ansmet.New(ds.Vectors, ansmet.Options{
		Metric: ansmet.L2, Elem: ansmet.Uint8, EfConstruction: 80,
	})
	if err != nil {
		log.Fatal(err)
	}

	probe, ok := db.Vector(7)
	if !ok {
		log.Fatal("vector 7 missing")
	}
	const k = 20
	nn, lines, err := db.ExactSearch(probe, k)
	if err != nil {
		log.Fatal(err)
	}

	full := db.Len() * db.Stats().LinesPerVector
	fmt.Printf("exact top-%d scan over %d vectors:\n", k, db.Len())
	dups := 0
	for _, n := range nn {
		if n.Dist <= 2 { // near-duplicate radius
			dups++
		}
	}
	fmt.Printf("  near-duplicates of item 7 found: %d (incl. itself)\n", dups)
	fmt.Printf("  lines fetched: %d of %d (%.0f%% skipped, zero accuracy loss)\n",
		lines, full, 100*(1-float64(lines)/float64(full)))

	// Cross-check against the plain scan through a Base design.
	baseDB, err := ansmet.New(ds.Vectors, ansmet.Options{
		Metric: ansmet.L2, Elem: ansmet.Uint8, EfConstruction: 80,
		Design: ansmet.UseDesign(ansmet.CPUBase),
	})
	if err != nil {
		log.Fatal(err)
	}
	ref, refLines, _ := baseDB.ExactSearch(probe, k)
	for i := range nn {
		if nn[i].ID != ref[i].ID {
			log.Fatalf("exact scans disagree at rank %d: %v vs %v", i, nn[i], ref[i])
		}
	}
	fmt.Printf("  verified identical to the full scan (%d lines)\n", refLines)
}
