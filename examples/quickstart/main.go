// Quickstart: build an ANSMET database over a handful of vectors and run a
// nearest-neighbor query through the full design (NDP + hybrid early
// termination). Everything runs in-process; the "hardware" is the bundled
// timing simulator.
package main

import (
	"fmt"
	"log"
	"math"

	"ansmet"
)

func main() {
	// A tiny 2-D dataset: points on a spiral.
	var vectors [][]float32
	for i := 0; i < 500; i++ {
		t := float64(i) * 0.05
		vectors = append(vectors, []float32{
			float32(t * math.Cos(t)),
			float32(t * math.Sin(t)),
		})
	}

	db, err := ansmet.New(vectors, ansmet.Options{
		Metric:         ansmet.L2,
		Elem:           ansmet.Float32,
		EfConstruction: 64, // keep the demo build instant
	})
	if err != nil {
		log.Fatal(err)
	}

	query := []float32{3, 4}
	res, err := db.Search(query, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("5 nearest neighbors of (%.1f, %.1f):\n", query[0], query[1])
	for _, n := range res {
		v, _ := db.Vector(n.ID)
		fmt.Printf("  id=%3d  point=(%6.2f, %6.2f)  distance=%.3f\n", n.ID, v[0], v[1], n.Dist)
	}

	st := db.Stats()
	fmt.Printf("\npreprocessing: %d lines/vector, common prefix %d bits (saves %.1f%% storage)\n",
		st.LinesPerVector, st.PrefixBits, st.SpaceSavedPercent)
}
