// NDP speedup study: the hardware-evaluation scenario. Given one workload
// (a DEEP-profile dataset of image-descriptor vectors), compare all nine
// design points of the paper — CPU baselines, plain NDP offload, and the
// early-termination variants — on throughput, memory traffic and energy,
// using the bundled cycle-level timing simulation. This is a miniature
// version of the paper's Fig. 6/7 sweep, runnable in seconds.
package main

import (
	"fmt"
	"log"

	"ansmet"
	"ansmet/internal/dataset"
	"ansmet/internal/energy"
)

func main() {
	p := dataset.ProfileByName("DEEP")
	ds := dataset.Generate(p, 3000, 24, 7)
	gt := ds.GroundTruth(10)
	model := energy.Default()

	fmt.Printf("workload: %d x %d-dim %v vectors (%v), 24 queries, k=10\n\n",
		len(ds.Vectors), p.Dim, p.Elem, p.Metric)
	fmt.Printf("%-12s %10s %9s %10s %9s %8s\n",
		"design", "QPS", "speedup", "traffic", "energy", "recall")

	var baseQPS, baseMJ float64
	for _, d := range ansmet.AllDesigns {
		db, err := ansmet.New(ds.Vectors, ansmet.Options{
			Metric: p.Metric, Elem: p.Elem,
			EfConstruction: 100, Seed: 7,
			Design: ansmet.UseDesign(d),
		})
		if err != nil {
			log.Fatal(err)
		}
		run := db.Run(ds.Queries, 10, 64)
		rep := run.Report

		recall := 0.0
		for qi, res := range run.Results {
			ids := make([]uint32, len(res))
			for i, nb := range res {
				ids[i] = nb.ID
			}
			recall += ansmet.RecallAtK(ids, gt[qi])
		}
		recall /= float64(len(run.Results))

		mj := model.Compute(rep.EnergyActivity()).TotalMJ()
		if d == ansmet.CPUBase {
			baseQPS, baseMJ = rep.QPS(), mj
		}
		fmt.Printf("%-12s %10.0f %8.2fx %9.1fMB %8.2fx %8.3f\n",
			d, rep.QPS(), rep.QPS()/baseQPS,
			float64(rep.Mem.HostBytes+rep.Mem.NDPBytes)/1e6,
			mj/baseMJ, recall)
	}
	fmt.Println("\nrecall is identical across designs: early termination is lossless by construction.")
}
