// Hardware protocol walk-through: drive an NDP unit directly through the
// four DDR-encoded instructions of the paper's Fig. 5(e) — configure,
// set-query, set-search and poll — the way the host memory controller
// would, and watch early termination happen at the register level. This is
// the lowest-level API in the repository; the higher layers (Database,
// System) wrap exactly this protocol.
//
// Every payload carries a CRC-8 in its last byte (see the ndp package
// docs); the walk-through ends by corrupting a payload in transit and
// watching the unit reject it.
package main

import (
	"fmt"
	"log"

	"ansmet/internal/bitplane"
	"ansmet/internal/dataset"
	"ansmet/internal/ndp"
)

func main() {
	// A small DEEP-profile rank: 64 fp32 vectors in the transformed
	// bit-plane layout (one 8-bit group, then 4-bit groups).
	p := dataset.ProfileByName("DEEP")
	ds := dataset.Generate(p, 64, 1, 42)
	sched := bitplane.DualSchedule(p.Elem, 0, 8, 1, 4)
	layout := bitplane.MustLayout(p.Elem, p.Dim, sched)

	slab := make([]byte, len(ds.Vectors)*layout.VectorBytes())
	var codes []uint32
	for i, v := range ds.Vectors {
		codes = p.Elem.EncodeVector(v, codes[:0])
		layout.Transform(codes, slab[i*layout.VectorBytes():(i+1)*layout.VectorBytes()])
	}
	unit := ndp.NewUnit(ndp.SliceRank{Bytes: slab, VectorBytes: layout.VectorBytes()})

	// 1. configure: element type, dimension, metric, ET parameters.
	cfgPayload := ndp.EncodeConfigure(ndp.Config{
		Elem: p.Elem, Dim: uint16(p.Dim), Metric: p.Metric,
		Nc: 8, Tc: 1, Nf: 4,
	})
	if err := unit.Configure(cfgPayload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configure: %v %d-dim, %v, schedule %v (%d lines/vector)\n",
		p.Elem, p.Dim, p.Metric, sched, layout.LinesPerVector())

	// 2. set-search first (the paper's ordering optimization): a full
	// payload of tasks with a tight threshold so most early-terminate.
	q := ds.Queries[0]
	// Threshold just above the best of the batch, so the others must be
	// rejected — mostly from their first fetched lines.
	best := p.Metric.Distance(q, ds.Vectors[0])
	for addr := 1; addr < ndp.MaxTasksPerPayload; addr++ {
		if d := p.Metric.Distance(q, ds.Vectors[addr]); d < best {
			best = d
		}
	}
	threshold := float32(best) * 1.02
	var tasks []ndp.Task
	for addr := uint32(0); addr < ndp.MaxTasksPerPayload; addr++ {
		tasks = append(tasks, ndp.Task{Addr: addr, Threshold: threshold})
	}
	searchPayload, count, err := ndp.EncodeSetSearch(tasks)
	if err != nil {
		log.Fatal(err)
	}
	const qshr = 5
	if err := unit.SetSearch(qshr, count, searchPayload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("set-search: %d tasks to QSHR %d, threshold %.3f\n", count, qshr, threshold)

	// 3. set-query: the query vector in 64 B chunks (63 B data + CRC each).
	chunks, err := ndp.EncodeQueryChunks(p.Elem, q)
	if err != nil {
		log.Fatal(err)
	}
	for seq, c := range chunks {
		if err := unit.SetQuery(qshr, seq, c); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("set-query: %d chunks (%d B query)\n", len(chunks), len(q)*p.Elem.Bytes())

	// 4. poll: a DDR READ returns the encoded response payload; the host
	// validates its CRC while decoding.
	raw, err := unit.Poll(qshr)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := ndp.DecodePollResponse(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("poll: done=%v mask=%08b faults=%08b, %d lines fetched (full batch would be %d)\n\n",
		resp.Completed, resp.DoneMask, resp.FaultMask, resp.FetchCnt, count*layout.LinesPerVector())
	for i := 0; i < count; i++ {
		if resp.Dist[i] == ndp.InvalidDist {
			d := p.Metric.Distance(q, ds.Vectors[tasks[i].Addr])
			fmt.Printf("  task %d (vec %d): REJECTED (register holds invalid MAX; true distance %.3f)\n",
				i, tasks[i].Addr, d)
		} else {
			fmt.Printf("  task %d (vec %d): accepted, distance %.3f\n", i, tasks[i].Addr, resp.Dist[i])
		}
	}

	// Sanity: the distances in the registers match host-side math.
	for i := 0; i < count; i++ {
		if resp.Dist[i] != ndp.InvalidDist {
			want := p.Metric.Distance(q, ds.Vectors[tasks[i].Addr])
			if diff := float64(resp.Dist[i]) - want; diff > 1e-4 || diff < -1e-4 {
				log.Fatalf("register %d mismatch: %v vs %v", i, resp.Dist[i], want)
			}
		}
	}
	fmt.Println("\nregister distances verified against host-side computation")

	// 5. Protocol hardening in action: flip one bit of a set-search payload
	// "in transit" and watch the unit reject it instead of comparing
	// against a garbage address.
	corrupt := searchPayload
	corrupt[2] ^= 0x40
	if err := unit.SetSearch(qshr, count, corrupt); err != nil {
		fmt.Printf("\ncorrupted set-search rejected: %v\n", err)
	} else {
		log.Fatal("corrupted payload was accepted")
	}
}
