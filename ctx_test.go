package ansmet

import (
	"context"
	"errors"
	"testing"
	"time"
)

// expiredCtx returns a context whose deadline already passed.
func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	t.Cleanup(cancel)
	if ctx.Err() == nil {
		t.Fatal("context not expired")
	}
	return ctx
}

// TestSearchCtxExpiredDeadline: an already-expired context is rejected up
// front — typed error, no results, and the index is never touched (proved
// by passing a query the validator would otherwise reject).
func TestSearchCtxExpiredDeadline(t *testing.T) {
	db := tinyDB(t)
	ctx := expiredCtx(t)
	q := make([]float32, 8)

	nn, err := db.SearchCtx(ctx, q, 5)
	if nn != nil {
		t.Fatalf("expired ctx returned %d results, want none", len(nn))
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(ErrDeadlineExceeded)", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(context.DeadlineExceeded)", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) || ce.Partial {
		t.Fatalf("err = %#v, want *CancelError with Partial=false", err)
	}

	// A wrong-dimension query normally fails validation with ErrDimension;
	// on an expired context the deadline error wins because validation (and
	// everything after it) is never reached.
	_, err = db.SearchCtx(ctx, make([]float32, 3), 5)
	if errors.Is(err, ErrDimension) || !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired ctx with bad query: err = %v, want deadline error (index untouched)", err)
	}

	if _, _, err := db.ExactSearchCtx(ctx, q, 5); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("ExactSearchCtx err = %v, want ErrDeadlineExceeded", err)
	}
	if _, err := db.SearchManyCtx(ctx, [][]float32{q}, 5, 10, 1); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("SearchManyCtx err = %v, want ErrDeadlineExceeded", err)
	}
}

// TestSearchCtxCanceled: explicit cancellation classifies as ErrCanceled
// (and context.Canceled), distinct from the deadline sentinel.
func TestSearchCtxCanceled(t *testing.T) {
	db := tinyDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.SearchCtx(ctx, make([]float32, 8), 5)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled / context.Canceled", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v matches the deadline sentinels, want cancel only", err)
	}
}

// TestSearchCtxMatchesSearch: a context that never fires must not change a
// single result bit relative to the plain entry points.
func TestSearchCtxMatchesSearch(t *testing.T) {
	db := tinyDB(t)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		q, _ := db.Vector(uint32(i * 7))
		want, err := db.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.SearchCtx(ctx, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q%d: %d results, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("q%d result %d: %+v != %+v", i, j, got[j], want[j])
			}
		}

		wantNN, wantLines, err := db.ExactSearch(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotNN, gotLines, err := db.ExactSearchCtx(ctx, q, 5)
		if err != nil || gotLines != wantLines || len(gotNN) != len(wantNN) {
			t.Fatalf("q%d exact: err=%v lines=%d/%d n=%d/%d",
				i, err, gotLines, wantLines, len(gotNN), len(wantNN))
		}
		for j := range wantNN {
			if gotNN[j] != wantNN[j] {
				t.Fatalf("q%d exact result %d: %+v != %+v", i, j, gotNN[j], wantNN[j])
			}
		}
	}
}

// TestSearchCtxInvalidInput: a live context still surfaces the input
// validation sentinels (and IsInvalidInput classifies them).
func TestSearchCtxInvalidInput(t *testing.T) {
	db := tinyDB(t)
	ctx := context.Background()
	if _, err := db.SearchCtx(ctx, make([]float32, 3), 5); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
	_, err := db.SearchCtx(ctx, make([]float32, 8), 0)
	if !errors.Is(err, ErrBadK) || !IsInvalidInput(err) {
		t.Fatalf("err = %v, want ErrBadK classified by IsInvalidInput", err)
	}
	if IsInvalidInput(&CancelError{Err: ErrDeadlineExceeded}) {
		t.Fatal("IsInvalidInput misclassifies a cancellation error")
	}
}

// TestSearchManyCtxMidCancel: cancelling while the batch runs stops the
// pool within one query, keeps the completed queries' results, and leaves
// the unstarted ones nil. The test hook makes the cancellation point
// deterministic (single worker, cancel before query 8 starts).
func TestSearchManyCtxMidCancel(t *testing.T) {
	db := tinyDB(t)
	queries := make([][]float32, 32)
	for i := range queries {
		queries[i], _ = db.Vector(uint32(i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const cancelAt = 8
	searchManyTestHook = func(i int) {
		if i == cancelAt {
			cancel()
		}
	}
	defer func() { searchManyTestHook = nil }()

	out, err := db.SearchManyCtx(ctx, queries, 3, 10, 1)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelError", err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !ce.Partial {
		t.Fatal("completed queries present but Partial=false")
	}
	if len(out) != len(queries) {
		t.Fatalf("out has %d slots, want %d", len(out), len(queries))
	}
	for i := 0; i < cancelAt; i++ {
		if out[i] == nil {
			t.Fatalf("completed query %d lost its results", i)
		}
	}
	for i := cancelAt; i < len(out); i++ {
		if out[i] != nil {
			t.Fatalf("query %d ran after cancellation", i)
		}
	}
}
